// Property tests for the tagged wire codecs (serial/codec.hpp): per-codec
// roundtrip error bounds, exact size accounting, sign/zero edge cases, the
// binary16 conversion itself (exhaustively), and the kF32-is-legacy-bitwise
// guarantee the golden curves depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/serial/codec.hpp"
#include "src/serial/f16.hpp"
#include "src/serial/quantize.hpp"
#include "src/serial/tensor_codec.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

constexpr WireCodec kAllCodecs[] = {WireCodec::kF32, WireCodec::kF16,
                                    WireCodec::kI8};

/// Encode under `codec`, decode, return the decoded tensor; asserts the tag
/// survives and the frame is consumed exactly.
Tensor roundtrip(const Tensor& t, WireCodec codec) {
  BufferWriter w;
  encode_tensor_tagged(t, codec, w);
  BufferReader r({w.bytes().data(), w.bytes().size()});
  const TaggedTensor back = decode_tensor_tagged(r);
  EXPECT_EQ(back.codec, codec);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.tensor.shape(), t.shape());
  return back.tensor;
}

TEST(F16, KnownScalarConversions) {
  EXPECT_EQ(f32_to_f16_bits(0.0F), 0x0000);
  EXPECT_EQ(f32_to_f16_bits(-0.0F), 0x8000);
  EXPECT_EQ(f32_to_f16_bits(1.0F), 0x3C00);
  EXPECT_EQ(f32_to_f16_bits(-2.0F), 0xC000);
  EXPECT_EQ(f32_to_f16_bits(0.5F), 0x3800);
  EXPECT_EQ(f32_to_f16_bits(65504.0F), 0x7BFF);  // largest finite f16
  // Values that round past 65504 overflow to Inf, as does Inf itself.
  EXPECT_EQ(f32_to_f16_bits(65520.0F), 0x7C00);
  EXPECT_EQ(f32_to_f16_bits(1.0e30F), 0x7C00);
  EXPECT_EQ(f32_to_f16_bits(-std::numeric_limits<float>::infinity()), 0xFC00);
  // Smallest f16 subnormal is 2^-24; exactly half of it ties to even (zero).
  EXPECT_EQ(f32_to_f16_bits(std::ldexp(1.0F, -24)), 0x0001);
  EXPECT_EQ(f32_to_f16_bits(std::ldexp(1.0F, -25)), 0x0000);
  EXPECT_EQ(f32_to_f16_bits(std::ldexp(1.5F, -25)), 0x0001);
  // NaN survives as a quiet NaN.
  const std::uint16_t nan_bits =
      f32_to_f16_bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_GT(static_cast<std::uint16_t>(nan_bits & 0x7FFFU), 0x7C00U);
  EXPECT_TRUE(std::isnan(f16_bits_to_f32(nan_bits)));
}

TEST(F16, EveryBitPatternRoundTripsExactly) {
  // f16 -> f32 is exact and f32 -> f16 of an exact value must return the
  // identical bits — exhaustively over all 2^16 patterns. (NaNs only need to
  // stay NaN: the quiet bit is forced and the payload truncated.)
  for (std::uint32_t h = 0; h <= 0xFFFFU; ++h) {
    const auto bits = static_cast<std::uint16_t>(h);
    const float f = f16_bits_to_f32(bits);
    if ((bits & 0x7FFFU) > 0x7C00U) {
      EXPECT_TRUE(std::isnan(f)) << "bits " << h;
      continue;
    }
    EXPECT_EQ(f32_to_f16_bits(f), bits) << "bits " << h;
  }
}

TEST(Codec, F16RoundTripErrorBound) {
  // Half precision keeps 11 significand bits, so the roundtrip error of any
  // element is at most 2^-11 * max|x| over the tensor (subnormal flushes are
  // far below that for data of any reasonable amplitude).
  Rng rng(21);
  for (const Shape& shape : {Shape{64}, Shape{3, 17}, Shape{2, 3, 4, 5}}) {
    const Tensor t = Tensor::normal(shape, rng);
    const Tensor back = roundtrip(t, WireCodec::kF16);
    float max_abs = 0.0F;
    for (const float v : t.data()) max_abs = std::max(max_abs, std::abs(v));
    const float bound = std::ldexp(max_abs, -11);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      EXPECT_LE(std::abs(back.data()[i] - t.data()[i]), bound)
          << "element " << i;
    }
  }
}

TEST(Codec, I8RoundTripErrorBound) {
  // Symmetric int8: error of any element is at most half a quantization
  // step (plus an ulp of slack for the scale's own rounding).
  Rng rng(22);
  for (const Shape& shape : {Shape{64}, Shape{5, 13}, Shape{2, 3, 4}}) {
    const Tensor t = Tensor::normal(shape, rng);
    const Tensor back = roundtrip(t, WireCodec::kI8);
    float max_abs = 0.0F;
    for (const float v : t.data()) max_abs = std::max(max_abs, std::abs(v));
    const float step = quantization_step(max_abs);
    const float bound = 0.5F * step * (1.0F + 1e-5F);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      EXPECT_LE(std::abs(back.data()[i] - t.data()[i]), bound)
          << "element " << i;
    }
  }
}

TEST(Codec, I8RoundsHalfAwayFromZero) {
  // max|x| = 127 makes scale exactly 1, exposing the rounding rule: exact
  // halves go AWAY from zero (deterministic regardless of FP rounding mode),
  // not to-nearest-even.
  Tensor t = Tensor::zeros(Shape{4});
  t.data()[0] = 127.0F;
  t.data()[1] = 2.5F;
  t.data()[2] = -2.5F;
  t.data()[3] = 0.5F;
  const Tensor back = roundtrip(t, WireCodec::kI8);
  EXPECT_EQ(back.data()[0], 127.0F);
  EXPECT_EQ(back.data()[1], 3.0F);
  EXPECT_EQ(back.data()[2], -3.0F);
  EXPECT_EQ(back.data()[3], 1.0F);
}

TEST(Codec, AllZeroTensorsRoundTripExactly) {
  // All-zero is the i8 edge case (scale 0) and must decode to exact zeros
  // under every codec.
  for (const WireCodec codec : kAllCodecs) {
    const Tensor t = Tensor::zeros(Shape{3, 4});
    const Tensor back = roundtrip(t, codec);
    for (const float v : back.data()) EXPECT_EQ(v, 0.0F);
  }
}

TEST(Codec, F16PreservesSignedZeroAndFlushesDenormals) {
  Tensor t = Tensor::zeros(Shape{4});
  t.data()[0] = -0.0F;
  t.data()[1] = 0.0F;
  t.data()[2] = 1.0e-39F;   // f32 denormal, far below f16 range
  t.data()[3] = -1.0e-39F;
  const Tensor back = roundtrip(t, WireCodec::kF16);
  EXPECT_EQ(back.data()[0], 0.0F);
  EXPECT_TRUE(std::signbit(back.data()[0]));
  EXPECT_FALSE(std::signbit(back.data()[1]));
  // Denormal inputs flush to SIGNED zero — the 2^-11 relative bound applies
  // to normal-range data only; below f16's subnormal floor the contract is
  // flush-to-zero with the sign kept.
  EXPECT_EQ(back.data()[2], 0.0F);
  EXPECT_FALSE(std::signbit(back.data()[2]));
  EXPECT_EQ(back.data()[3], 0.0F);
  EXPECT_TRUE(std::signbit(back.data()[3]));
}

TEST(Codec, EncodedBytesMatchesBytesWrittenForAllShapes) {
  // encoded_tensor_bytes is the size authority (analytic byte model, stats
  // accounting): for every codec and shape — including rank 0 and zero
  // dims — it must equal the bytes the encoder actually writes.
  Rng rng(23);
  std::vector<Shape> shapes = {Shape{}, Shape{0}, Shape{3, 0, 5}, Shape{1},
                               Shape{7}, Shape{2, 3}, Shape{2, 3, 4, 5}};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int64_t> dims(1 + rng.uniform_u64(4));
    for (auto& d : dims) {
      d = static_cast<std::int64_t>(rng.uniform_u64(9));  // 0..8, zeros legal
    }
    shapes.emplace_back(std::move(dims));
  }
  for (const Shape& shape : shapes) {
    const Tensor t = Tensor::uniform(shape, rng, -1.0F, 1.0F);
    for (const WireCodec codec : kAllCodecs) {
      BufferWriter w;
      encode_tensor_tagged(t, codec, w);
      EXPECT_EQ(w.size(), encoded_tensor_bytes(shape, codec))
          << wire_codec_name(codec);
      BufferReader r({w.bytes().data(), w.bytes().size()});
      const TaggedTensor back = decode_tensor_tagged(r);
      EXPECT_EQ(back.tensor.shape(), shape) << wire_codec_name(codec);
      EXPECT_TRUE(r.exhausted()) << wire_codec_name(codec);
    }
  }
}

TEST(Codec, KF32FrameIsBitwiseTheLegacyUntaggedFormat) {
  // The compatibility keystone: a kF32 frame must be byte-identical to the
  // pre-tag wire format (u32 rank, i64 dims, f32 data) — the tag byte is the
  // header word's high byte, which the legacy format always wrote as zero.
  Rng rng(24);
  const Tensor t = Tensor::normal(Shape{3, 5}, rng);
  BufferWriter tagged;
  encode_tensor_tagged(t, WireCodec::kF32, tagged);
  BufferWriter wrapper;
  encode_tensor(t, wrapper);
  EXPECT_EQ(tagged.bytes(), wrapper.bytes());

  BufferWriter legacy;
  legacy.write_u32(2);  // rank, high byte 0
  legacy.write_i64(3);
  legacy.write_i64(5);
  legacy.write_f32_span(t.data());
  EXPECT_EQ(tagged.bytes(), legacy.bytes());
  EXPECT_EQ(tagged.bytes()[3], 0);  // the tag byte itself
}

TEST(Codec, EncodingIsDeterministic) {
  // Two encodes of the same tensor are bitwise identical for every codec —
  // the per-codec golden curves depend on it.
  Rng rng(25);
  const Tensor t = Tensor::normal(Shape{4, 9}, rng);
  for (const WireCodec codec : kAllCodecs) {
    BufferWriter a;
    BufferWriter b;
    encode_tensor_tagged(t, codec, a);
    encode_tensor_tagged(t, codec, b);
    EXPECT_EQ(a.bytes(), b.bytes()) << wire_codec_name(codec);
  }
}

TEST(Codec, TypedWrappersRejectForeignTags) {
  Rng rng(26);
  const Tensor t = Tensor::normal(Shape{2, 2}, rng);
  BufferWriter f16_frame;
  encode_tensor_tagged(t, WireCodec::kF16, f16_frame);
  BufferReader r1({f16_frame.bytes().data(), f16_frame.bytes().size()});
  EXPECT_THROW((void)decode_tensor(r1), SerializationError);

  BufferWriter f32_frame;
  encode_tensor_tagged(t, WireCodec::kF32, f32_frame);
  BufferReader r2({f32_frame.bytes().data(), f32_frame.bytes().size()});
  EXPECT_THROW((void)decode_tensor_i8(r2), SerializationError);
}

TEST(Codec, I8RejectsNonFiniteInput) {
  for (const float poison : {std::numeric_limits<float>::quiet_NaN(),
                             std::numeric_limits<float>::infinity(),
                             -std::numeric_limits<float>::infinity()}) {
    Tensor t = Tensor::zeros(Shape{3});
    t.data()[1] = poison;
    BufferWriter w;
    EXPECT_THROW(encode_tensor_tagged(t, WireCodec::kI8, w),
                 SerializationError);
  }
}

TEST(Codec, SizeFunctionsAgree) {
  const Shape s{3, 5, 2};
  EXPECT_EQ(encoded_tensor_bytes(s), encoded_tensor_bytes(s, WireCodec::kF32));
  EXPECT_EQ(encoded_tensor_i8_bytes(s),
            encoded_tensor_bytes(s, WireCodec::kI8));
  // And the documented formulas hold: 4 + 8*rank + per-codec body.
  EXPECT_EQ(encoded_tensor_bytes(s, WireCodec::kF32), 4U + 24U + 4U * 30U);
  EXPECT_EQ(encoded_tensor_bytes(s, WireCodec::kF16), 4U + 24U + 2U * 30U);
  EXPECT_EQ(encoded_tensor_bytes(s, WireCodec::kI8), 4U + 24U + 4U + 30U);
}

TEST(Codec, NamesRoundTrip) {
  EXPECT_STREQ(wire_codec_name(WireCodec::kF32), "f32");
  EXPECT_STREQ(wire_codec_name(WireCodec::kF16), "f16");
  EXPECT_STREQ(wire_codec_name(WireCodec::kI8), "i8");
  for (const WireCodec codec : kAllCodecs) {
    EXPECT_EQ(parse_wire_codec(wire_codec_name(codec)), codec);
  }
  EXPECT_THROW((void)parse_wire_codec("f64"), InvalidArgument);
  EXPECT_THROW((void)parse_wire_codec(""), InvalidArgument);
  EXPECT_THROW((void)parse_wire_codec("F32"), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
