// Robustness / property fuzz tests: corrupted wire payloads must never
// crash (throw SerializationError or decode cleanly), random network
// traffic keeps accounting consistent, and random layer stacks keep
// shape/gradient plumbing coherent.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/data/dataloader.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/net/network.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pool.hpp"
#include "src/nn/sequential.hpp"
#include "src/core/membership.hpp"
#include "src/core/protocol.hpp"
#include "src/core/server.hpp"
#include "src/core/split_model.hpp"
#include "src/models/mlp.hpp"
#include "src/optim/sgd.hpp"
#include "src/serial/codec.hpp"
#include "src/serial/crc32.hpp"
#include "src/serial/quantize.hpp"
#include "src/serial/section_file.hpp"
#include "src/serial/tensor_codec.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

TEST(CodecFuzz, CorruptedF32PayloadsNeverCrash) {
  Rng rng(1);
  const Tensor t = Tensor::normal(Shape{3, 5, 2}, rng);
  BufferWriter w;
  encode_tensor(t, w);
  const auto original = w.bytes();

  int threw = 0, decoded = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = original;
    // Corrupt 1-4 random bytes.
    const int mutations = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int m = 0; m < mutations; ++m) {
      bytes[rng.uniform_u64(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    try {
      BufferReader r({bytes.data(), bytes.size()});
      const Tensor back = decode_tensor(r);
      (void)back.numel();
      ++decoded;
    } catch (const SerializationError&) {
      ++threw;
    } catch (const InvalidArgument&) {
      ++threw;  // e.g. absurd-but-positive dims rejected by Shape
    }
  }
  EXPECT_EQ(threw + decoded, 500);
  // Header corruption must be detected at least sometimes.
  EXPECT_GT(threw, 0);
}

TEST(CodecFuzz, CorruptedI8PayloadsNeverCrash) {
  Rng rng(2);
  const Tensor t = Tensor::normal(Shape{4, 7}, rng);
  BufferWriter w;
  encode_tensor_i8(t, w);
  const auto original = w.bytes();
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = original;
    bytes[rng.uniform_u64(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    try {
      BufferReader r({bytes.data(), bytes.size()});
      (void)decode_tensor_i8(r);
    } catch (const SerializationError&) {
    } catch (const InvalidArgument&) {
    }
  }
  SUCCEED();
}

TEST(CodecFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bytes(rng.uniform_u64(64));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    }
    try {
      BufferReader r({bytes.data(), bytes.size()});
      (void)decode_tensor(r);
    } catch (const SerializationError&) {
    } catch (const InvalidArgument&) {
    }
  }
  SUCCEED();
}

TEST(CodecFuzz, EveryTruncatedPrefixThrows) {
  // Exhaustive, not sampled: a transport that cuts the buffer at ANY byte
  // boundary must yield SerializationError, never a crash or short read.
  Rng rng(7);
  const Tensor t = Tensor::normal(Shape{3, 5, 2}, rng);
  for (const bool quantized : {false, true}) {
    BufferWriter w;
    if (quantized) {
      encode_tensor_i8(t, w);
    } else {
      encode_tensor(t, w);
    }
    const auto full = w.bytes();
    for (std::size_t len = 0; len < full.size(); ++len) {
      BufferReader r({full.data(), len});
      if (quantized) {
        EXPECT_THROW((void)decode_tensor_i8(r), SerializationError)
            << "i8 prefix of " << len << " bytes";
      } else {
        EXPECT_THROW((void)decode_tensor(r), SerializationError)
            << "f32 prefix of " << len << " bytes";
      }
    }
  }
}

TEST(CodecFuzz, LyingLengthFieldsRejectedBeforeAllocation) {
  // Headers whose rank/dims promise more data than the buffer holds (or
  // absurd element counts) must be rejected up front — the decoder must not
  // trust the length fields. Layout: u32 rank, then rank x i64 dims (LE).
  Rng rng(8);
  const Tensor t = Tensor::normal(Shape{4, 4}, rng);
  for (const bool quantized : {false, true}) {
    BufferWriter w;
    if (quantized) {
      encode_tensor_i8(t, w);
    } else {
      encode_tensor(t, w);
    }
    const auto original = w.bytes();
    const auto decode = [&](const std::vector<std::uint8_t>& bytes) {
      BufferReader r({bytes.data(), bytes.size()});
      if (quantized) {
        (void)decode_tensor_i8(r);
      } else {
        (void)decode_tensor(r);
      }
    };

    // Rank field claims 200 dims (over the rank limit).
    auto lie = original;
    lie[0] = 200;
    EXPECT_THROW(decode(lie), SerializationError);

    // First dim inflated to claim far more elements than the payload holds.
    lie = original;
    lie[4] = 0xFF;
    lie[5] = 0xFF;  // dim0 = 65535 instead of 4
    EXPECT_THROW(decode(lie), SerializationError);

    // Dims overflow the element limit (2^32) without any dim being negative.
    lie = original;
    lie[8] = 0;  // dim0 = 2^24
    lie[9] = 0;
    lie[10] = 0;
    lie[11] = 1;
    lie[12] = 0;  // dim1 = 2^24
    lie[13] = 0;
    lie[14] = 0;
    lie[15] = 0;
    lie[16] = 0;
    lie[17] = 0;
    lie[18] = 0;
    lie[19] = 1;
    EXPECT_THROW(decode(lie), SerializationError);

    // Negative dim (sign bit of the i64).
    lie = original;
    lie[11] = 0x80;
    EXPECT_THROW(decode(lie), SerializationError);
  }
}

TEST(CodecFuzz, UnknownCodecTagsAlwaysRejected) {
  // The codec tag is the high byte of the leading header word (offset 3,
  // little-endian). Every value outside the registered set {0, 1, 2} must be
  // a SerializationError — exhaustively over all 253 unknown tags.
  Rng rng(12);
  const Tensor t = Tensor::normal(Shape{3, 5, 2}, rng);
  BufferWriter w;
  encode_tensor_tagged(t, WireCodec::kF32, w);
  auto bytes = w.bytes();
  for (int tag = 3; tag <= 255; ++tag) {
    bytes[3] = static_cast<std::uint8_t>(tag);
    BufferReader r({bytes.data(), bytes.size()});
    EXPECT_THROW((void)decode_tensor_tagged(r), SerializationError)
        << "tag " << tag;
  }
}

TEST(CodecFuzz, EveryTruncatedTaggedPrefixThrows) {
  // The f32/i8 truncation sweep above goes through the typed wrappers; this
  // one covers the tagged decoder itself for all three codecs, at every
  // byte boundary.
  Rng rng(13);
  const Tensor t = Tensor::normal(Shape{3, 5, 2}, rng);
  for (const WireCodec codec :
       {WireCodec::kF32, WireCodec::kF16, WireCodec::kI8}) {
    BufferWriter w;
    encode_tensor_tagged(t, codec, w);
    const auto full = w.bytes();
    for (std::size_t len = 0; len < full.size(); ++len) {
      BufferReader r({full.data(), len});
      EXPECT_THROW((void)decode_tensor_tagged(r), SerializationError)
          << wire_codec_name(codec) << " prefix of " << len << " bytes";
    }
  }
}

TEST(CodecFuzz, EveryHeaderBitFlipThrowsThroughProtocolDecode) {
  // Exhaustive single-bit flips over the header region (tag+rank word and
  // dims) of each codec's frame, decoded the way the protocol layer does —
  // with a negotiated codec to enforce. All dims are positive, so any dim
  // flip changes numel and therefore the body size; rank flips misalign the
  // frame; tag flips either leave the registered set (SerializationError) or
  // land on a codec the channel did not negotiate (ProtocolError). No flip
  // may decode cleanly.
  Rng rng(14);
  const Tensor t = Tensor::normal(Shape{3, 5, 2}, rng);
  constexpr std::size_t kHeaderBytes = 4 + 8 * 3;  // tag+rank word, 3 dims
  for (const WireCodec codec :
       {WireCodec::kF32, WireCodec::kF16, WireCodec::kI8}) {
    auto bytes = core::encode_tensor_payload(t, codec);
    ASSERT_GT(bytes.size(), kHeaderBytes);
    for (std::size_t byte = 0; byte < kHeaderBytes; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        bytes[byte] ^= static_cast<std::uint8_t>(1U << bit);
        try {
          (void)core::decode_tensor_payload({bytes.data(), bytes.size()},
                                            codec);
          ADD_FAILURE() << wire_codec_name(codec) << " flip at byte " << byte
                        << " bit " << bit << " decoded cleanly";
        } catch (const SerializationError&) {
        } catch (const ProtocolError&) {
        } catch (const InvalidArgument&) {
          // absurd-but-positive dims rejected by Shape
        }
        bytes[byte] ^= static_cast<std::uint8_t>(1U << bit);
      }
    }
  }
}

TEST(CodecFuzz, MismatchedNegotiatedCodecIsProtocolError) {
  // A well-formed frame whose (valid) tag differs from the negotiated codec
  // is a protocol violation, not a serialization error — the frame is fine,
  // the channel agreement is broken.
  Rng rng(15);
  const Tensor t = Tensor::normal(Shape{4, 4}, rng);
  const WireCodec codecs[] = {WireCodec::kF32, WireCodec::kF16,
                              WireCodec::kI8};
  for (const WireCodec actual : codecs) {
    const auto payload = core::encode_tensor_payload(t, actual);
    for (const WireCodec expected : codecs) {
      if (expected == actual) {
        EXPECT_NO_THROW((void)core::decode_tensor_payload(
            {payload.data(), payload.size()}, expected));
      } else {
        EXPECT_THROW((void)core::decode_tensor_payload(
                         {payload.data(), payload.size()}, expected),
                     ProtocolError)
            << wire_codec_name(actual) << " frame on a "
            << wire_codec_name(expected) << " channel";
      }
    }
  }
}

TEST(CodecFuzz, PoisonedI8ScaleRejected) {
  // The i8 scale is attacker-controlled f32 right after the dims. NaN, Inf,
  // and negative scales must be rejected before any element math — a NaN
  // scale would silently dequantize every element to NaN.
  Rng rng(16);
  const Tensor t = Tensor::normal(Shape{3, 5, 2}, rng);
  BufferWriter w;
  encode_tensor_tagged(t, WireCodec::kI8, w);
  const auto original = w.bytes();
  const std::size_t scale_at = 4 + 8 * 3;  // after tag+rank word and 3 dims
  const std::uint32_t poisons[] = {
      0x7FC00000U,  // quiet NaN
      0x7F800000U,  // +Inf
      0xFF800000U,  // -Inf
      0xBF800000U,  // -1.0
      0xFFC00000U,  // -NaN
  };
  for (const std::uint32_t poison : poisons) {
    auto bytes = original;
    for (std::size_t i = 0; i < 4; ++i) {
      bytes[scale_at + i] = static_cast<std::uint8_t>(poison >> (8 * i));
    }
    BufferReader r({bytes.data(), bytes.size()});
    EXPECT_THROW((void)decode_tensor_tagged(r), SerializationError)
        << "scale bits " << poison;
  }
}

TEST(CodecFuzz, TrailingBytesAfterTensorRejectedByProtocol) {
  // decode_tensor_payload requires the payload to be EXACTLY one frame;
  // trailing garbage (e.g. a lying dim that shrank the body) must throw.
  Rng rng(17);
  const Tensor t = Tensor::normal(Shape{2, 3}, rng);
  for (const WireCodec codec :
       {WireCodec::kF32, WireCodec::kF16, WireCodec::kI8}) {
    auto payload = core::encode_tensor_payload(t, codec);
    payload.push_back(0x00);
    EXPECT_THROW(
        (void)core::decode_tensor_payload({payload.data(), payload.size()},
                                          codec),
        SerializationError)
        << wire_codec_name(codec);
  }
}

TEST(CodecFuzz, CorruptedF16PayloadsNeverCrash) {
  // Random multi-byte corruption of f16 frames: every trial either decodes
  // to some tensor or throws a typed error — never UB. (Body corruption is
  // undetectable at this layer by design; the envelope CRC owns that.)
  Rng rng(18);
  const Tensor t = Tensor::normal(Shape{4, 7}, rng);
  BufferWriter w;
  encode_tensor_tagged(t, WireCodec::kF16, w);
  const auto original = w.bytes();
  int threw = 0, decoded = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = original;
    const int mutations = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int m = 0; m < mutations; ++m) {
      bytes[rng.uniform_u64(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    try {
      BufferReader r({bytes.data(), bytes.size()});
      (void)decode_tensor_tagged(r);
      ++decoded;
    } catch (const SerializationError&) {
      ++threw;
    } catch (const InvalidArgument&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw + decoded, 500);
  EXPECT_GT(threw, 0);
}

TEST(Crc32, KnownVectorAndIncremental) {
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  // The canonical CRC-32 check value for "123456789".
  EXPECT_EQ(crc32({check.data(), check.size()}), 0xCBF43926U);
  EXPECT_EQ(crc32({check.data(), 0}), 0U);
  // Incremental form composes: crc(ab) == crc(b, crc(a)).
  const std::uint32_t head = crc32({check.data(), 4});
  EXPECT_EQ(crc32({check.data() + 4, 5}, head),
            crc32({check.data(), check.size()}));
}

TEST(Crc32, DetectsEverySingleBitFlip) {
  Rng rng(9);
  std::vector<std::uint8_t> msg(64);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  const std::uint32_t good = crc32({msg.data(), msg.size()});
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      msg[byte] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_NE(crc32({msg.data(), msg.size()}), good)
          << "flip at byte " << byte << " bit " << bit;
      msg[byte] ^= static_cast<std::uint8_t>(1U << bit);
    }
  }
}

TEST(Crc32, DetectsRandomBursts) {
  // Error bursts up to 32 bits are guaranteed caught; wider random bursts
  // slip through only with probability ~2^-32 (none in this seeded sample).
  Rng rng(10);
  std::vector<std::uint8_t> msg(256);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  const std::uint32_t good = crc32({msg.data(), msg.size()});
  for (int trial = 0; trial < 500; ++trial) {
    auto burst = msg;
    const std::size_t start = rng.uniform_u64(msg.size() - 4);
    const std::size_t len = 1 + rng.uniform_u64(4);
    for (std::size_t i = 0; i < len; ++i) {
      burst[start + i] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    EXPECT_NE(crc32({burst.data(), burst.size()}), good);
  }
}

TEST(NetworkFuzz, RandomTrafficKeepsAccountingConsistent) {
  Rng rng(4);
  net::Network network;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(network.add_node("n" + std::to_string(i)));
  }
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < nodes.size(); ++b) {
      network.set_link(nodes[a], nodes[b],
                       net::Link::mbps(rng.uniform(10.0F, 1000.0F),
                                       rng.uniform(1.0F, 50.0F)));
    }
  }

  std::uint64_t sent_bytes = 0;
  std::vector<int> expected(nodes.size(), 0);
  constexpr int kMessages = 300;
  for (int m = 0; m < kMessages; ++m) {
    const NodeId src = nodes[rng.uniform_u64(nodes.size())];
    NodeId dst = src;
    while (dst == src) dst = nodes[rng.uniform_u64(nodes.size())];
    Envelope e = make_envelope(
        src, dst, static_cast<std::uint32_t>(rng.uniform_u64(5)), m,
        std::vector<std::uint8_t>(rng.uniform_u64(4096)));
    sent_bytes += e.wire_bytes();
    ++expected[dst];
    network.send(std::move(e));
  }
  EXPECT_EQ(network.stats().total_bytes(), sent_bytes);
  EXPECT_EQ(network.stats().total_messages(), kMessages);

  // Drain everything; clock must be monotone and all messages delivered.
  double last = network.clock().now();
  int received = 0;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    while (network.pending(nodes[n]) > 0) {
      (void)network.receive(nodes[n]);
      EXPECT_GE(network.clock().now(), last);
      last = network.clock().now();
      ++received;
      --expected[n];
    }
    EXPECT_EQ(expected[n], 0);
  }
  EXPECT_EQ(received, kMessages);
}

/// Builds a random conv stack ending in a classifier; returns input shape.
nn::Sequential random_stack(Rng& rng, Shape& input_shape,
                            std::int64_t* out_classes) {
  const std::int64_t channels = 1 + static_cast<std::int64_t>(rng.uniform_u64(3));
  std::int64_t size = 8 + 4 * static_cast<std::int64_t>(rng.uniform_u64(3));
  input_shape = Shape{2, channels, size, size};

  nn::Sequential seq;
  std::int64_t c = channels;
  const int conv_blocks = 1 + static_cast<int>(rng.uniform_u64(3));
  for (int b = 0; b < conv_blocks; ++b) {
    const std::int64_t out_c = 2 + static_cast<std::int64_t>(rng.uniform_u64(6));
    seq.emplace<nn::Conv2d>(c, out_c, 3, 1, 1, rng);
    c = out_c;
    if (rng.bernoulli(0.5F)) seq.emplace<nn::BatchNorm2d>(c);
    seq.emplace<nn::ReLU>();
    if (size >= 4 && rng.bernoulli(0.6F)) {
      seq.emplace<nn::MaxPool2d>(2);
      size /= 2;
    }
  }
  seq.emplace<nn::Flatten>();
  const std::int64_t classes = 2 + static_cast<std::int64_t>(rng.uniform_u64(8));
  seq.emplace<nn::Linear>(c * size * size, classes, rng);
  *out_classes = classes;
  return seq;
}

TEST(LayerFuzz, RandomStacksKeepShapesAndGradientsCoherent) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Shape input_shape;
    std::int64_t classes = 0;
    nn::Sequential seq = random_stack(rng, input_shape, &classes);

    // Pure shape propagation agrees with execution.
    const Shape predicted = seq.output_shape(input_shape);
    const Tensor x = Tensor::normal(input_shape, rng);
    const Tensor y = seq.forward(x, true);
    ASSERT_EQ(y.shape(), predicted) << "trial " << trial;
    ASSERT_EQ(y.shape(), Shape({2, classes}));

    // Backward returns the input shape and produces finite gradients.
    seq.zero_grad();
    const Tensor g = Tensor::normal(y.shape(), rng);
    const Tensor gin = seq.backward(g);
    ASSERT_EQ(gin.shape(), input_shape);
    for (const float v : gin.data()) ASSERT_TRUE(std::isfinite(v));
    for (nn::Parameter* p : seq.parameters()) {
      for (const float v : p->grad.data()) ASSERT_TRUE(std::isfinite(v));
    }
  }
}

/// A small but representative SMCKPT02 container: two sections, one of them
/// empty (the edge the encoder/decoder must both handle).
std::vector<std::uint8_t> sample_container() {
  SectionFileWriter w;
  BufferWriter a;
  a.write_u64(0xDEADBEEFULL);
  a.write_string("state");
  w.add("alpha", std::move(a));
  w.add("beta", std::vector<std::uint8_t>{0, 1, 2, 3, 4, 5, 6, 7});
  return w.encode();
}

TEST(CheckpointFuzz, EveryTruncatedPrefixThrows) {
  // Exhaustive: a checkpoint cut at ANY byte boundary — torn write, partial
  // download, dying disk — must throw, never crash or partially decode.
  const auto full = sample_container();
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW((void)SectionFileReader::decode({full.data(), len}, "fuzz"),
                 SerializationError)
        << "prefix of " << len << " bytes";
  }
  // Sanity: the untruncated container decodes.
  EXPECT_NO_THROW(
      (void)SectionFileReader::decode({full.data(), full.size()}, "fuzz"));
}

TEST(CheckpointFuzz, EverySingleBitFlipThrows) {
  // Exhaustive over every bit of the container. The CRC trailer covers each
  // whole section record and the magic/count are structurally validated, so
  // there is no bit anywhere whose flip goes unnoticed.
  const auto full = sample_container();
  auto bytes = full;
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_THROW(
          (void)SectionFileReader::decode({bytes.data(), bytes.size()}, "fuzz"),
          SerializationError)
          << "flip at byte " << byte << " bit " << bit;
      bytes[byte] ^= static_cast<std::uint8_t>(1U << bit);
    }
  }
  EXPECT_EQ(bytes, full);  // all flips undone
}

TEST(CheckpointFuzz, LyingLengthsRejectedBeforeAllocation) {
  const auto full = sample_container();
  // Section payload length field of the FIRST section lives right after the
  // magic (8), section count (4), name length (4) and name "alpha" (5).
  const std::size_t payload_len_at = 8 + 4 + 4 + 5;
  auto lie = full;
  for (std::size_t i = 0; i < 8; ++i) lie[payload_len_at + i] = 0xFF;
  EXPECT_THROW((void)SectionFileReader::decode({lie.data(), lie.size()}, "f"),
               SerializationError);

  // Name length lying similarly (claims a 4 GiB name).
  lie = full;
  for (std::size_t i = 0; i < 4; ++i) lie[12 + i] = 0xFF;
  EXPECT_THROW((void)SectionFileReader::decode({lie.data(), lie.size()}, "f"),
               SerializationError);

  // Section count lying: claims 65537 sections (over the cap) and 2.
  lie = full;
  lie[8] = 0x01;
  lie[9] = 0x00;
  lie[10] = 0x01;
  lie[11] = 0x00;
  EXPECT_THROW((void)SectionFileReader::decode({lie.data(), lie.size()}, "f"),
               SerializationError);
}

TEST(CheckpointFuzz, WrongMagicAndWrongVersionAreDistinct) {
  auto not_smckpt = sample_container();
  not_smckpt[0] = 'X';
  try {
    (void)SectionFileReader::decode({not_smckpt.data(), not_smckpt.size()},
                                    "f");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_EQ(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }

  // Right family, future version "SMCKPT99": the error must say "version" so
  // an operator knows to upgrade rather than suspect corruption.
  auto future = sample_container();
  future[6] = '9';
  future[7] = '9';
  try {
    (void)SectionFileReader::decode({future.data(), future.size()}, "f");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFuzz, TrailingGarbageAndRandomSoupRejected) {
  auto padded = sample_container();
  padded.push_back(0x00);
  EXPECT_THROW(
      (void)SectionFileReader::decode({padded.data(), padded.size()}, "f"),
      SerializationError);

  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> soup(rng.uniform_u64(256));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    EXPECT_THROW((void)SectionFileReader::decode({soup.data(), soup.size()},
                                                 "soup"),
                 SerializationError);
  }
  // Soup that starts with valid magic but random innards: still rejected.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> soup(8 + rng.uniform_u64(128));
    const char magic[] = "SMCKPT02";
    for (std::size_t i = 0; i < 8; ++i) {
      soup[i] = static_cast<std::uint8_t>(magic[i]);
    }
    for (std::size_t i = 8; i < soup.size(); ++i) {
      soup[i] = static_cast<std::uint8_t>(rng.uniform_u64(256));
    }
    EXPECT_THROW((void)SectionFileReader::decode({soup.data(), soup.size()},
                                                 "soup"),
                 SerializationError);
  }
}

TEST(DataLoaderStress, EveryIndexSeenOncePerEpoch) {
  // Over E epochs with drop_last=false, every shard index appears exactly E
  // times regardless of batch size.
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t shard_size =
        3 + static_cast<std::int64_t>(rng.uniform_u64(40));
    const std::int64_t batch =
        1 + static_cast<std::int64_t>(rng.uniform_u64(7));
    data::SyntheticCifarOptions opt;
    opt.num_examples = 64;
    opt.num_classes = 64;  // label == index: lets us track identity
    opt.image_size = 8;
    const data::SyntheticCifar ds(opt);
    std::vector<std::int64_t> shard;
    for (std::int64_t i = 0; i < shard_size; ++i) shard.push_back(i);
    data::DataLoader loader(ds, shard, batch, Rng(trial));

    constexpr int kEpochs = 3;
    std::vector<int> seen(static_cast<std::size_t>(shard_size), 0);
    const std::int64_t batches = loader.batches_per_epoch() * kEpochs;
    for (std::int64_t b = 0; b < batches; ++b) {
      for (const auto label : loader.next_batch().labels) {
        ASSERT_LT(label, shard_size);
        ++seen[static_cast<std::size_t>(label)];
      }
    }
    for (const int count : seen) EXPECT_EQ(count, kEpochs);
  }
}

// ---------------------------------------------------------------------------
// Membership control frames (kHeartbeat / kJoinRequest / kJoinAccept /
// kUpdateReject) — churn makes these the frames most likely to arrive torn,
// replayed, or forged, so they get the same exhaustive treatment as tensors.
// ---------------------------------------------------------------------------

/// One encoded instance of each membership payload, labelled for messages.
struct EncodedMembershipFrame {
  const char* name;
  std::vector<std::uint8_t> bytes;
  void (*decode)(std::span<const std::uint8_t>);
};

std::vector<EncodedMembershipFrame> sample_membership_frames() {
  std::vector<EncodedMembershipFrame> frames;
  frames.push_back({"heartbeat",
                    core::encode_heartbeat_payload({1, 9, 4}),
                    [](std::span<const std::uint8_t> p) {
                      (void)core::decode_heartbeat_payload(p);
                    }});
  frames.push_back({"join request",
                    core::encode_join_request_payload(
                        {2, core::RejoinMode::kCold, 7}),
                    [](std::span<const std::uint8_t> p) {
                      (void)core::decode_join_request_payload(p);
                    }});
  core::JoinAcceptMsg bare;
  bare.current_round = 3;
  bare.has_l1 = false;
  frames.push_back({"join accept (no genesis)",
                    core::encode_join_accept_payload(bare),
                    [](std::span<const std::uint8_t> p) {
                      (void)core::decode_join_accept_payload(p);
                    }});
  Rng rng(21);
  core::JoinAcceptMsg cold;
  cold.current_round = 3;
  cold.has_l1 = true;
  cold.l1 = Tensor::normal(Shape{5}, rng);
  frames.push_back({"join accept (genesis)",
                    core::encode_join_accept_payload(cold),
                    [](std::span<const std::uint8_t> p) {
                      (void)core::decode_join_accept_payload(p);
                    }});
  core::UpdateRejectMsg reject;
  reject.reason = core::RejectReason::kNormBomb;
  reject.strikes = 2;
  reject.state = core::MemberState::kSuspect;
  frames.push_back({"update reject",
                    core::encode_update_reject_payload(reject),
                    [](std::span<const std::uint8_t> p) {
                      (void)core::decode_update_reject_payload(p);
                    }});
  return frames;
}

TEST(MembershipFuzz, EveryTruncatedControlFramePrefixThrows) {
  // Exhaustive over every byte boundary of every membership payload: a torn
  // control frame must be SerializationError, never a crash or short read.
  for (const auto& frame : sample_membership_frames()) {
    for (std::size_t len = 0; len < frame.bytes.size(); ++len) {
      EXPECT_THROW(frame.decode({frame.bytes.data(), len}),
                   SerializationError)
          << frame.name << " prefix of " << len << " bytes";
    }
    // Sanity: the untruncated payload decodes.
    EXPECT_NO_THROW(frame.decode({frame.bytes.data(), frame.bytes.size()}))
        << frame.name;
  }
}

TEST(MembershipFuzz, TrailingBytesAfterControlFrameRejected) {
  // require_exhausted guards every membership decoder: smuggled trailing
  // bytes (frame-in-frame, lying lengths upstream) must throw.
  for (const auto& frame : sample_membership_frames()) {
    auto padded = frame.bytes;
    padded.push_back(0x00);
    EXPECT_THROW(frame.decode({padded.data(), padded.size()}),
                 SerializationError)
        << frame.name;
  }
}

TEST(MembershipFuzz, UnknownEnumBytesRejectedExhaustively) {
  // Every enum byte on the membership wire, swept over its full unknown
  // range — forward-compatibility junk from a newer peer must throw, never
  // reinterpret.
  const auto join = core::encode_join_request_payload(
      {0, core::RejoinMode::kWarm, 0});
  auto bytes = join;
  for (int mode = 2; mode <= 255; ++mode) {  // rejoin mode at offset 4
    bytes[4] = static_cast<std::uint8_t>(mode);
    EXPECT_THROW(
        (void)core::decode_join_request_payload({bytes.data(), bytes.size()}),
        SerializationError)
        << "mode byte " << mode;
  }

  core::UpdateRejectMsg msg;
  msg.reason = core::RejectReason::kNonFinite;
  msg.strikes = 1;
  msg.state = core::MemberState::kActive;
  const auto reject = core::encode_update_reject_payload(msg);
  bytes = reject;
  for (int reason = 0; reason <= 255; ++reason) {  // reason at offset 0
    if (reason == 1 || reason == 2) continue;
    bytes[0] = static_cast<std::uint8_t>(reason);
    EXPECT_THROW((void)core::decode_update_reject_payload(
                     {bytes.data(), bytes.size()}),
                 SerializationError)
        << "reason byte " << reason;
  }
  bytes = reject;
  for (int state = 6; state <= 255; ++state) {  // lifecycle state at offset 5
    bytes[5] = static_cast<std::uint8_t>(state);
    EXPECT_THROW((void)core::decode_update_reject_payload(
                     {bytes.data(), bytes.size()}),
                 SerializationError)
        << "state byte " << state;
  }

  core::JoinAcceptMsg accept;
  accept.current_round = 1;
  accept.has_l1 = false;
  const auto accept_bytes = core::encode_join_accept_payload(accept);
  bytes = accept_bytes;
  for (int flag = 2; flag <= 255; ++flag) {  // has_l1 flag at offset 8
    bytes[8] = static_cast<std::uint8_t>(flag);
    EXPECT_THROW(
        (void)core::decode_join_accept_payload({bytes.data(), bytes.size()}),
        SerializationError)
        << "has_l1 byte " << flag;
  }
}

TEST(MembershipFuzz, JoinAcceptGenesisMustBeF32Tagged) {
  // A lossy-coded genesis L1 would fork a cold-rejoined platform's weights
  // from every other replica bitwise. The decoder must refuse any codec but
  // f32 even when the frame itself is perfectly well-formed.
  Rng rng(22);
  const Tensor l1 = Tensor::normal(Shape{6}, rng);
  for (const WireCodec codec : {WireCodec::kF16, WireCodec::kI8}) {
    BufferWriter w;
    w.write_u64(5);  // current_round
    w.write_u8(1);   // has_l1
    encode_tensor_tagged(l1, codec, w);
    const auto bytes = w.bytes();
    EXPECT_THROW(
        (void)core::decode_join_accept_payload({bytes.data(), bytes.size()}),
        SerializationError)
        << wire_codec_name(codec);
  }
}

TEST(MembershipFuzz, CorruptedControlFramesNeverCrash) {
  // Random multi-byte corruption of each membership payload: every trial
  // either decodes to some message or throws SerializationError — never UB.
  Rng rng(23);
  for (const auto& frame : sample_membership_frames()) {
    int threw = 0, decoded = 0;
    for (int trial = 0; trial < 300; ++trial) {
      auto bytes = frame.bytes;
      const int mutations = 1 + static_cast<int>(rng.uniform_u64(4));
      for (int m = 0; m < mutations; ++m) {
        bytes[rng.uniform_u64(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
      }
      try {
        frame.decode({bytes.data(), bytes.size()});
        ++decoded;
      } catch (const SerializationError&) {
        ++threw;
      } catch (const InvalidArgument&) {
        ++threw;  // genesis tensor with absurd-but-positive dims
      }
    }
    EXPECT_EQ(threw + decoded, 300) << frame.name;
  }
}

TEST(MembershipFuzz, ReplayedHeartbeatsNeverRenewTheLease) {
  // A replay attack (or WAN duplicate) re-delivers an old beat. The beat
  // counter is the replay horizon: any beat <= the last seen one is counted
  // stale and must NOT refresh the liveness lease — the platform still
  // degrades to SUSPECT on schedule.
  core::MembershipConfig cfg;
  cfg.enabled = true;
  cfg.lease_sec = 30.0;
  cfg.dead_sec = 90.0;
  core::MembershipService svc(cfg, core::ChurnPlan{}, 1, /*seed=*/7, {4});

  EXPECT_TRUE(svc.note_heartbeat(0, 5, 0.0));
  EXPECT_EQ(svc.state(0), core::MemberState::kActive);
  // Replays land well inside the lease window; none may renew it.
  for (const std::uint64_t replayed : {5ULL, 4ULL, 1ULL, 0ULL}) {
    EXPECT_FALSE(svc.note_heartbeat(0, replayed, 25.0));
  }
  EXPECT_EQ(svc.ledger().heartbeats_fresh, 1);
  EXPECT_EQ(svc.ledger().heartbeats_stale, 4);

  // 40 sim-seconds after the one FRESH beat: the lease (30 s) has expired
  // even though stale beats arrived at t=25.
  svc.begin_round(1, 40.0);
  EXPECT_EQ(svc.state(0), core::MemberState::kSuspect);
}

TEST(MembershipFuzz, RandomBeatSequencesKeepFreshStaleAccountingExact) {
  // Property: over any beat sequence, fresh + stale == delivered, and a beat
  // is fresh iff it strictly exceeds the running maximum.
  Rng rng(24);
  core::MembershipConfig cfg;
  cfg.enabled = true;
  core::MembershipService svc(cfg, core::ChurnPlan{}, 1, /*seed=*/7, {4});
  std::uint64_t horizon = 0;
  std::int64_t expect_fresh = 0, expect_stale = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t beat = rng.uniform_u64(32);
    const bool fresh = beat > horizon;
    EXPECT_EQ(svc.note_heartbeat(0, beat, 0.1 * i), fresh) << "beat " << beat;
    if (fresh) {
      horizon = beat;
      ++expect_fresh;
    } else {
      ++expect_stale;
    }
  }
  EXPECT_EQ(svc.ledger().heartbeats_fresh, expect_fresh);
  EXPECT_EQ(svc.ledger().heartbeats_stale, expect_stale);
  EXPECT_EQ(expect_fresh + expect_stale, 500);
}

/// Server + membership fixture for hostile-frame tests: a real split model
/// behind a CentralServer with a 2-platform roster (and one rogue node that
/// is NOT on it).
struct HostileFixture {
  net::Network network;
  NodeId server_id, p0, p1, rogue;
  std::unique_ptr<core::MembershipService> service;
  std::unique_ptr<core::CentralServer> server;

  explicit HostileFixture(const core::MembershipConfig& cfg) {
    server_id = network.add_node("server");
    p0 = network.add_node("p0");
    p1 = network.add_node("p1");
    rogue = network.add_node("rogue");
    models::MlpConfig mcfg;
    mcfg.input_shape = Shape{3, 8, 8};
    mcfg.hidden = {8};
    mcfg.num_classes = 4;
    auto model = models::make_mlp(mcfg);
    auto parts = core::split_at(std::move(model.net), model.default_cut);
    server = std::make_unique<core::CentralServer>(
        server_id, std::move(parts.server), optim::SgdOptions{});
    service = std::make_unique<core::MembershipService>(
        cfg, core::ChurnPlan{}, 2, /*seed=*/7,
        std::vector<std::int64_t>{4, 4});
    server->set_membership(service.get(), {p0, p1});
  }

  Envelope frame(NodeId src, core::MsgKind kind,
                 std::vector<std::uint8_t> payload) {
    return make_envelope(src, server_id, static_cast<std::uint32_t>(kind),
                         /*round=*/1, std::move(payload));
  }
};

TEST(MembershipFuzz, ForgedPlatformIndexRejectedNamingBothSides) {
  // A heartbeat / join request whose payload claims a different platform
  // index than the roster maps the sender to is a forgery attempt; the
  // server must refuse it BEFORE any membership state moves, and the error
  // must name both indices for the operator.
  core::MembershipConfig cfg;
  cfg.enabled = true;
  HostileFixture fx(cfg);

  const auto forged_beat = core::encode_heartbeat_payload({1, 1, 0});
  try {
    fx.server->handle(fx.network,
                      fx.frame(fx.p0, core::MsgKind::kHeartbeat, forged_beat));
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("claims platform index 1"), std::string::npos) << what;
    EXPECT_NE(what.find("maps it to 0"), std::string::npos) << what;
  }
  const auto forged_join = core::encode_join_request_payload(
      {7, core::RejoinMode::kWarm, 0});
  EXPECT_THROW(fx.server->handle(fx.network,
                                 fx.frame(fx.p1, core::MsgKind::kJoinRequest,
                                          forged_join)),
               ProtocolError);
  // Nothing moved: both platforms still in their boot state, zero contact.
  EXPECT_EQ(fx.service->state(0), core::MemberState::kJoining);
  EXPECT_EQ(fx.service->state(1), core::MemberState::kJoining);
  EXPECT_EQ(fx.service->ledger().heartbeats_fresh, 0);
  EXPECT_EQ(fx.service->ledger().heartbeats_stale, 0);
  EXPECT_EQ(fx.service->ledger().rejoins_warm, 0);
}

TEST(MembershipFuzz, OffRosterNodeCannotSpeakMembership) {
  core::MembershipConfig cfg;
  cfg.enabled = true;
  HostileFixture fx(cfg);
  const auto beat = core::encode_heartbeat_payload({0, 1, 0});
  try {
    fx.server->handle(fx.network,
                      fx.frame(fx.rogue, core::MsgKind::kHeartbeat, beat));
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("not on the roster"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(fx.service->ledger().heartbeats_fresh, 0);
}

TEST(MembershipFuzz, MembershipFramesWithoutMembershipAreProtocolErrors) {
  // A server that never enabled membership must refuse control frames
  // loudly — silently dropping them would mask a misconfigured fleet.
  net::Network network;
  const NodeId server_id = network.add_node("server");
  const NodeId sender = network.add_node("sender");
  models::MlpConfig mcfg;
  mcfg.input_shape = Shape{3, 8, 8};
  mcfg.hidden = {8};
  mcfg.num_classes = 4;
  auto model = models::make_mlp(mcfg);
  auto parts = core::split_at(std::move(model.net), model.default_cut);
  core::CentralServer server(server_id, std::move(parts.server),
                             optim::SgdOptions{});
  const auto beat = core::encode_heartbeat_payload({0, 1, 0});
  EXPECT_THROW(
      server.handle(network,
                    make_envelope(sender, server_id,
                                  static_cast<std::uint32_t>(
                                      core::MsgKind::kHeartbeat),
                                  1, beat)),
      ProtocolError);
  const auto join = core::encode_join_request_payload(
      {0, core::RejoinMode::kWarm, 0});
  EXPECT_THROW(
      server.handle(network,
                    make_envelope(sender, server_id,
                                  static_cast<std::uint32_t>(
                                      core::MsgKind::kJoinRequest),
                                  1, join)),
      ProtocolError);
}

TEST(MembershipFuzz, HostileRejoinCannotBypassQuarantine) {
  // The quarantine-evasion play: get struck out, then immediately send a
  // join request hoping admission resets the slate. The server must refuse
  // at the protocol layer with the quarantine intact.
  core::MembershipConfig cfg;
  cfg.enabled = true;
  cfg.strikes_to_quarantine = 1;
  HostileFixture fx(cfg);

  const Tensor poisoned =
      Tensor::full(Shape{4}, std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(fx.service->admit_update(0, 0, poisoned),
            core::MembershipService::Verdict::kRejectNonFinite);
  ASSERT_EQ(fx.service->state(0), core::MemberState::kQuarantined);

  for (const core::RejoinMode mode :
       {core::RejoinMode::kWarm, core::RejoinMode::kCold}) {
    const auto join = core::encode_join_request_payload({0, mode, 0});
    EXPECT_THROW(fx.server->handle(fx.network,
                                   fx.frame(fx.p0, core::MsgKind::kJoinRequest,
                                            join)),
                 ProtocolError);
  }
  EXPECT_EQ(fx.service->state(0), core::MemberState::kQuarantined);
  EXPECT_EQ(fx.service->ledger().rejoins_warm, 0);
  EXPECT_EQ(fx.service->ledger().rejoins_cold, 0);
}

/// A membership state blob with some lived-in history: contact, strikes, a
/// quarantine, accepted-norm history on both kinds.
std::vector<std::uint8_t> sample_membership_state() {
  core::MembershipConfig cfg;
  cfg.enabled = true;
  cfg.strikes_to_quarantine = 1;
  core::MembershipService svc(cfg, core::ChurnPlan{}, 2, /*seed=*/7, {4, 4});
  svc.begin_round(1, 0.0);
  (void)svc.note_heartbeat(0, 1, 0.0);
  (void)svc.note_heartbeat(1, 1, 0.0);
  (void)svc.admit_update(0, 0, Tensor::full(Shape{8}, 1.0F));
  (void)svc.admit_update(0, 1, Tensor::full(Shape{8}, 0.5F));
  (void)svc.admit_update(
      1, 0, Tensor::full(Shape{8}, std::numeric_limits<float>::infinity()));
  BufferWriter w;
  svc.save_state(w);
  return w.bytes();
}

core::MembershipService sink_service() {
  core::MembershipConfig cfg;
  cfg.enabled = true;
  cfg.strikes_to_quarantine = 1;
  return core::MembershipService(cfg, core::ChurnPlan{}, 2, /*seed=*/7,
                                 {4, 4});
}

TEST(MembershipFuzz, EveryTruncatedStatePrefixThrows) {
  const auto full = sample_membership_state();
  auto sink = sink_service();
  for (std::size_t len = 0; len < full.size(); ++len) {
    BufferReader r({full.data(), len});
    EXPECT_THROW(sink.load_state(r), SerializationError)
        << "prefix of " << len << " bytes";
  }
  BufferReader ok({full.data(), full.size()});
  EXPECT_NO_THROW(sink.load_state(ok));
}

TEST(MembershipFuzz, MalformedStateBytesRejectedExhaustively) {
  // Record layout (offsets within the blob): u32 count, then the first
  // record at offset 4 — state u8, 3 x f64, rejoin_mode u8 (+25),
  // pending u8 (+26), strikes i64 (+27), 2 x i64, probation u8 (+51), ...
  const auto full = sample_membership_state();

  auto corrupt = full;
  for (int state = 6; state <= 255; ++state) {
    corrupt[4] = static_cast<std::uint8_t>(state);
    auto sink = sink_service();
    BufferReader r({corrupt.data(), corrupt.size()});
    EXPECT_THROW(sink.load_state(r), SerializationError)
        << "state byte " << state;
  }
  corrupt = full;
  for (int mode = 2; mode <= 255; ++mode) {
    corrupt[4 + 25] = static_cast<std::uint8_t>(mode);
    auto sink = sink_service();
    BufferReader r({corrupt.data(), corrupt.size()});
    EXPECT_THROW(sink.load_state(r), SerializationError)
        << "mode byte " << mode;
  }
  for (const std::size_t flag_at : {std::size_t{4 + 26}, std::size_t{4 + 51}}) {
    corrupt = full;
    corrupt[flag_at] = 2;
    auto sink = sink_service();
    BufferReader r({corrupt.data(), corrupt.size()});
    EXPECT_THROW(sink.load_state(r), SerializationError)
        << "flag at offset " << flag_at;
  }
  // Negative strike counter (sign bit of the i64 at record offset 27).
  corrupt = full;
  corrupt[4 + 27 + 7] |= 0x80;
  {
    auto sink = sink_service();
    BufferReader r({corrupt.data(), corrupt.size()});
    EXPECT_THROW(sink.load_state(r), SerializationError) << "negative strikes";
  }
  // Roster-count lie: claims 3 platforms into a 2-platform session.
  corrupt = full;
  corrupt[0] = 3;
  {
    auto sink = sink_service();
    BufferReader r({corrupt.data(), corrupt.size()});
    try {
      sink.load_state(r);
      FAIL() << "expected SerializationError";
    } catch (const SerializationError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find('3'), std::string::npos) << what;
      EXPECT_NE(what.find('2'), std::string::npos) << what;
    }
  }
}

TEST(MembershipFuzz, CorruptedAndSoupStateNeverCrashes) {
  // Random corruption of a valid blob, and pure byte soup: load_state must
  // either decode cleanly (floats are raw — many flips are representable) or
  // throw SerializationError. Never UB, never a crash.
  Rng rng(25);
  const auto full = sample_membership_state();
  auto sink = sink_service();
  int threw = 0, loaded = 0;
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = full;
    const int mutations = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int m = 0; m < mutations; ++m) {
      bytes[rng.uniform_u64(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    try {
      BufferReader r({bytes.data(), bytes.size()});
      sink.load_state(r);
      ++loaded;
    } catch (const SerializationError&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw + loaded, 300);
  EXPECT_GT(threw, 0);

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> soup(rng.uniform_u64(128));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    try {
      BufferReader r({soup.data(), soup.size()});
      sink.load_state(r);
    } catch (const SerializationError&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace splitmed
