// End-to-end crash-recovery guarantees of the full-state checkpoint
// (docs/CHECKPOINT.md):
//
//   * Golden resume — checkpoint, "crash" (discard the trainer), resume in a
//     fresh process image: the completed run's byte series and curves are
//     bit-identical to an uninterrupted run. Exact doubles, no tolerance —
//     resume is replay, not approximation.
//   * Checkpointing is inert — saving every round changes nothing.
//   * A truncated or missing manifest (crash during save) is refused, and
//     the previous complete round remains loadable.
//   * The round-stamped handshake refuses node files from a different round
//     and configs with a different seed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"

namespace splitmed {
namespace {

namespace fs = std::filesystem;

core::ModelBuilder builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

/// The golden_curve_test configuration — the run whose fingerprint is pinned
/// repo-wide, so "resume matches the uninterrupted run" here also means
/// "resume matches the golden fingerprint".
core::SplitConfig base_config() {
  core::SplitConfig cfg;
  cfg.total_batch = 12;
  cfg.rounds = 10;
  cfg.eval_every = 1;
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  cfg.seed = 123;
  return cfg;
}

struct Datasets {
  data::SyntheticCifar train;
  data::SyntheticCifar test;
};

Datasets make_datasets() {
  data::SyntheticCifarOptions opt;
  opt.num_examples = 96;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  opt.seed = 42;
  data::SyntheticCifar train(opt);
  opt.num_examples = 32;
  opt.index_offset = 96;
  data::SyntheticCifar test(opt);
  return {std::move(train), std::move(test)};
}

data::Partition make_partition(const data::Dataset& train) {
  Rng prng(1);
  return data::partition_iid(train.size(), 3, prng);
}

metrics::TrainReport run_once(const core::SplitConfig& cfg) {
  const Datasets ds = make_datasets();
  core::SplitTrainer trainer(builder(), ds.train, make_partition(ds.train),
                             ds.test, cfg);
  return trainer.run();
}

/// Exact-double curve equality: same binary, same config, so resume must
/// reproduce every bit, not just a quantized fingerprint.
void expect_identical(const metrics::TrainReport& a,
                      const metrics::TrainReport& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].step, b.curve[i].step) << "point " << i;
    EXPECT_EQ(a.curve[i].cumulative_bytes, b.curve[i].cumulative_bytes)
        << "point " << i;
    EXPECT_EQ(a.curve[i].sim_seconds, b.curve[i].sim_seconds) << "point " << i;
    EXPECT_EQ(a.curve[i].train_loss, b.curve[i].train_loss) << "point " << i;
    EXPECT_EQ(a.curve[i].test_accuracy, b.curve[i].test_accuracy)
        << "point " << i;
  }
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.skipped_steps, b.skipped_steps);
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

TEST(CrashResume, ResumedRunIsBitIdenticalToUninterrupted) {
  const auto golden = run_once(base_config());

  // "Crash" after round 5: train only 5 rounds with a checkpoint at round 5,
  // then throw the trainer away. Nothing survives but the checkpoint files.
  const std::string dir = fresh_dir("crash_resume_golden");
  {
    auto cfg = base_config();
    cfg.rounds = 5;
    cfg.checkpoint_every = 5;
    cfg.checkpoint_dir = dir;
    (void)run_once(cfg);
  }

  // Fresh trainer, fresh datasets — a new process image. Resume and finish.
  auto cfg = base_config();
  cfg.resume_from = dir;
  const Datasets ds = make_datasets();
  core::SplitTrainer trainer(builder(), ds.train, make_partition(ds.train),
                             ds.test, cfg);
  EXPECT_EQ(trainer.next_round(), 6U);
  const auto resumed = trainer.run();

  // The resumed report carries the pre-crash points (restored from the
  // manifest) plus the post-resume points — the full 10-point golden curve.
  expect_identical(golden, resumed);
  fs::remove_all(dir);
}

TEST(CrashResume, CheckpointingEveryRoundIsInert) {
  const auto plain = run_once(base_config());
  const std::string dir = fresh_dir("crash_resume_inert");
  auto cfg = base_config();
  cfg.checkpoint_every = 1;
  cfg.checkpoint_dir = dir;
  const auto checkpointed = run_once(cfg);
  expect_identical(plain, checkpointed);
  // Every round boundary produced a complete checkpoint.
  for (std::uint64_t r = 1; r <= 10; ++r) {
    EXPECT_TRUE(fs::exists(fs::path(dir) / core::checkpoint_round_dirname(r) /
                           core::kManifestFile))
        << "round " << r;
  }
  fs::remove_all(dir);
}

TEST(CrashResume, ResumeWorksUnderWanFaultInjection) {
  // Faulted runs exercise the recovery protocol, the fault Rng, and the
  // retransmit accounting — all of which must survive the checkpoint too.
  auto faulted = base_config();
  faulted.faults.drop_rate = 0.05;
  faulted.faults.duplicate_rate = 0.05;
  faulted.faults.corrupt_rate = 0.05;
  faulted.faults.delay_spike_rate = 0.02;
  faulted.faults.delay_spike_sec = 2.0;
  faulted.recovery.timeout_sec = 5.0;
  faulted.recovery.backoff = 1.0;
  faulted.recovery.max_retries = 2;
  const auto golden = run_once(faulted);

  const std::string dir = fresh_dir("crash_resume_faulted");
  {
    auto cfg = faulted;
    cfg.rounds = 5;
    cfg.checkpoint_every = 5;
    cfg.checkpoint_dir = dir;
    (void)run_once(cfg);
  }
  auto cfg = faulted;
  cfg.resume_from = dir;
  const auto resumed = run_once(cfg);
  expect_identical(golden, resumed);
  fs::remove_all(dir);
}

TEST(CrashResume, TruncatedManifestFallsBackToPreviousRound) {
  const std::string dir = fresh_dir("crash_resume_truncated");
  {
    auto cfg = base_config();
    cfg.checkpoint_every = 5;
    cfg.checkpoint_dir = dir;
    (void)run_once(cfg);  // leaves round_000005 and round_000010
  }
  const fs::path round5 = fs::path(dir) / core::checkpoint_round_dirname(5);
  const fs::path round10 = fs::path(dir) / core::checkpoint_round_dirname(10);
  ASSERT_TRUE(fs::exists(round5 / core::kManifestFile));
  ASSERT_TRUE(fs::exists(round10 / core::kManifestFile));

  // Simulate a crash DURING the round-10 save: truncate its manifest to half.
  const fs::path manifest10 = round10 / core::kManifestFile;
  std::vector<char> image;
  {
    std::ifstream in(manifest10, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(manifest10, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size() / 2));
  }

  // The torn round is refused outright...
  {
    const Datasets ds = make_datasets();
    auto cfg = base_config();
    core::SplitTrainer trainer(builder(), ds.train, make_partition(ds.train),
                               ds.test, cfg);
    EXPECT_THROW(trainer.load_checkpoint(round10.string()),
                 SerializationError);
    // ...and the refusal left the trainer untouched: it still runs fresh.
    EXPECT_EQ(trainer.next_round(), 1U);
  }

  // ...and directory scanning falls back to the previous complete round.
  const auto found = core::find_resumable_checkpoint(dir);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, round5.string());

  {
    const Datasets ds = make_datasets();
    auto cfg = base_config();
    cfg.resume_from = dir;
    core::SplitTrainer trainer(builder(), ds.train, make_partition(ds.train),
                               ds.test, cfg);
    EXPECT_EQ(trainer.next_round(), 6U);
  }

  // Same story when the manifest never landed at all (crash before rename).
  fs::remove(manifest10);
  const auto refound = core::find_resumable_checkpoint(dir);
  ASSERT_TRUE(refound.has_value());
  EXPECT_EQ(*refound, round5.string());
  fs::remove_all(dir);
}

TEST(CrashResume, MismatchedRoundPeerIsRefused) {
  const std::string dir = fresh_dir("crash_resume_mismatch");
  {
    auto cfg = base_config();
    cfg.checkpoint_every = 5;
    cfg.checkpoint_dir = dir;
    (void)run_once(cfg);
  }
  const fs::path round5 = fs::path(dir) / core::checkpoint_round_dirname(5);
  const fs::path round10 = fs::path(dir) / core::checkpoint_round_dirname(10);

  // A round-5 platform file smuggled into the round-10 checkpoint: its meta
  // stamp disagrees with the manifest and the whole load is refused.
  fs::copy_file(round5 / core::checkpoint_platform_filename(0),
                round10 / core::checkpoint_platform_filename(0),
                fs::copy_options::overwrite_existing);
  const Datasets ds = make_datasets();
  auto cfg = base_config();
  core::SplitTrainer trainer(builder(), ds.train, make_partition(ds.train),
                             ds.test, cfg);
  EXPECT_THROW(trainer.load_checkpoint(round10.string()), ProtocolError);
  EXPECT_EQ(trainer.next_round(), 1U);
  fs::remove_all(dir);
}

TEST(CrashResume, MismatchedConfigIsRefused) {
  const std::string dir = fresh_dir("crash_resume_config");
  {
    auto cfg = base_config();
    cfg.rounds = 5;
    cfg.checkpoint_every = 5;
    cfg.checkpoint_dir = dir;
    (void)run_once(cfg);
  }
  const Datasets ds = make_datasets();
  auto cfg = base_config();
  cfg.seed = 999;  // not the seed the checkpoint was trained with
  cfg.resume_from = dir;
  EXPECT_THROW(core::SplitTrainer(builder(), ds.train,
                                  make_partition(ds.train), ds.test, cfg),
               SerializationError);
  fs::remove_all(dir);
}

TEST(CrashResume, ResumeFromNowhereIsALoudError) {
  auto cfg = base_config();
  cfg.resume_from = fresh_dir("crash_resume_empty");  // does not exist
  const Datasets ds = make_datasets();
  EXPECT_THROW(core::SplitTrainer(builder(), ds.train,
                                  make_partition(ds.train), ds.test, cfg),
               Error);
}

TEST(CrashResume, CheckpointConfigIsValidated) {
  const Datasets ds = make_datasets();
  auto cfg = base_config();
  cfg.checkpoint_every = 3;  // no checkpoint_dir
  EXPECT_THROW(core::SplitTrainer(builder(), ds.train,
                                  make_partition(ds.train), ds.test, cfg),
               Error);
  cfg.checkpoint_every = -1;
  cfg.checkpoint_dir = "somewhere";
  EXPECT_THROW(core::SplitTrainer(builder(), ds.train,
                                  make_partition(ds.train), ds.test, cfg),
               Error);
}

}  // namespace
}  // namespace splitmed
