// Tests for metrics/: curves, evaluation, confusion matrix, recorder.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/metrics/confusion.hpp"
#include "src/metrics/curve.hpp"
#include "src/metrics/evaluate.hpp"
#include "src/metrics/recorder.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/sequential.hpp"
#include "src/nn/flatten.hpp"

namespace splitmed {
namespace {

TEST(TrainReport, AccuracyAtBytes) {
  metrics::TrainReport r;
  r.curve = {{1, 0.0, 100, 0, 0, 0.2}, {2, 0.0, 200, 0, 0, 0.5},
             {3, 0.0, 300, 0, 0, 0.4}};
  EXPECT_DOUBLE_EQ(r.accuracy_at_bytes(250), 0.5);
  EXPECT_DOUBLE_EQ(r.accuracy_at_bytes(1000), 0.5);  // best under budget
  EXPECT_DOUBLE_EQ(r.accuracy_at_bytes(50), 0.0);
}

TEST(TrainReport, BytesToAccuracy) {
  metrics::TrainReport r;
  r.curve = {{1, 0.0, 100, 0, 0, 0.2}, {2, 0.0, 200, 0, 0, 0.6}};
  EXPECT_EQ(r.bytes_to_accuracy(0.5), 200U);
  EXPECT_EQ(r.bytes_to_accuracy(0.9), 0U);
}

TEST(Evaluate, PerfectModelScoresOne) {
  // A hand-built "classifier" on a 2-class dataset whose label equals
  // index % 2: cheat by routing through a linear layer trained... instead,
  // use a model that copies a distinguishing statistic. Simplest honest
  // check: evaluate a constant model — accuracy equals the base rate.
  data::SyntheticCifarOptions opt;
  opt.num_examples = 20;
  opt.num_classes = 2;
  opt.image_size = 8;
  const data::SyntheticCifar ds(opt);

  Rng rng(1);
  nn::Sequential model;
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(3 * 8 * 8, 2, rng);
  // Zero weights, bias favouring class 0 -> predicts 0 everywhere.
  model.parameters()[0]->value.zero();
  model.parameters()[1]->value = Tensor(Shape{2}, {1.0F, 0.0F});
  const double acc = metrics::evaluate_model(model, ds, 7);
  EXPECT_DOUBLE_EQ(acc, 0.5);  // labels alternate 0/1
}

TEST(Evaluate, CompositeEqualsMonolithic) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = 12;
  opt.num_classes = 3;
  opt.image_size = 8;
  const data::SyntheticCifar ds(opt);

  Rng rng(2);
  nn::Sequential front;
  front.emplace<nn::Flatten>();
  nn::Sequential back;
  back.emplace<nn::Linear>(3 * 8 * 8, 3, rng);

  Rng rng2(2);
  nn::Sequential whole;
  whole.emplace<nn::Flatten>();
  whole.emplace<nn::Linear>(3 * 8 * 8, 3, rng2);

  EXPECT_DOUBLE_EQ(metrics::evaluate_composite(front, &back, ds, 5),
                   metrics::evaluate_model(whole, ds, 5));
}

TEST(Confusion, CountsAndMetrics) {
  metrics::ConfusionMatrix cm(2);
  // logits for predictions: 1, 0, 1; labels: 1, 0, 0.
  const Tensor logits(Shape{3, 2}, {0, 1,
                                    1, 0,
                                    0, 1});
  cm.add_batch(logits, {1, 0, 0});
  EXPECT_EQ(cm.total(), 3);
  EXPECT_EQ(cm.count(1, 1), 1);
  EXPECT_EQ(cm.count(0, 0), 1);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_NEAR(cm.accuracy(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 0.75);
}

TEST(Confusion, EmptyClassesSafe) {
  metrics::ConfusionMatrix cm(3);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(Confusion, StrHasAllRows) {
  metrics::ConfusionMatrix cm(2);
  const std::string s = cm.str();
  EXPECT_NE(s.find("confusion"), std::string::npos);
}

TEST(Recorder, SummaryAndBudgetTables) {
  metrics::ExperimentRecorder rec("unit-test");
  metrics::TrainReport split;
  split.protocol = "split";
  split.model = "vgg-mini";
  split.curve = {{10, 0.5, 1000, 1.0, 0.3, 0.8}};
  split.total_bytes = 1000;
  split.final_accuracy = 0.8;
  split.steps_completed = 10;
  rec.add(split);

  std::ostringstream os;
  rec.print_summary(os);
  EXPECT_NE(os.str().find("split"), std::string::npos);
  EXPECT_NE(os.str().find("80.0%"), std::string::npos);

  std::ostringstream os2;
  rec.print_bytes_vs_accuracy(os2, {500, 2000});
  EXPECT_NE(os2.str().find("0.0%"), std::string::npos);   // under 500 B
  EXPECT_NE(os2.str().find("80.0%"), std::string::npos);  // under 2 kB
}

TEST(Recorder, CsvRoundTrip) {
  metrics::ExperimentRecorder rec("csv-test");
  metrics::TrainReport r;
  r.protocol = "split";
  r.model = "mlp";
  r.curve = {{1, 0.25, 42, 0.5, 1.25, 0.75}};
  rec.add(r);
  const std::string path = testing::TempDir() + "/splitmed_recorder_test.csv";
  rec.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("cumulative_bytes"), std::string::npos);
  EXPECT_NE(row.find("csv-test,split,mlp,1,0.25,42,0.5,1.25,0.75"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace splitmed
