// Tests for nn/loss.hpp: softmax cross-entropy values, gradients, accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/nn/loss.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  nn::SoftmaxCrossEntropy loss;
  const Tensor logits(Shape{2, 4});  // all zeros -> uniform softmax
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0F), 1e-5F);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsNearZero) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3});
  logits.at({0, 1}) = 50.0F;
  EXPECT_NEAR(loss.forward(logits, {1}), 0.0F, 1e-4F);
}

TEST(SoftmaxCrossEntropy, ConfidentWrongIsLarge) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3});
  logits.at({0, 1}) = 20.0F;
  EXPECT_GT(loss.forward(logits, {0}), 10.0F);
}

TEST(SoftmaxCrossEntropy, NumericallyStableForHugeLogits) {
  nn::SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 2});
  logits.at({0, 0}) = 10000.0F;
  logits.at({0, 1}) = 9999.0F;
  const float l = loss.forward(logits, {0});
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, std::log(1.0F + std::exp(-1.0F)), 1e-3F);
}

TEST(SoftmaxCrossEntropy, ProbabilitiesSumToOne) {
  nn::SoftmaxCrossEntropy loss;
  Rng rng(1);
  const Tensor logits = Tensor::normal(Shape{5, 7}, rng);
  loss.forward(logits, {0, 1, 2, 3, 4});
  for (std::int64_t r = 0; r < 5; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 7; ++c) s += loss.probabilities().at({r, c});
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOnehotOverBatch) {
  nn::SoftmaxCrossEntropy loss;
  const Tensor logits(Shape{2, 2});  // uniform: softmax = 0.5 everywhere
  loss.forward(logits, {0, 1});
  const Tensor g = loss.backward();
  EXPECT_NEAR(g.at({0, 0}), (0.5F - 1.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(g.at({0, 1}), 0.5F / 2.0F, 1e-6F);
  EXPECT_NEAR(g.at({1, 1}), (0.5F - 1.0F) / 2.0F, 1e-6F);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  nn::SoftmaxCrossEntropy loss;
  Rng rng(2);
  Tensor logits = Tensor::normal(Shape{3, 5}, rng);
  const std::vector<std::int64_t> labels = {4, 0, 2};
  loss.forward(logits, labels);
  const Tensor g = loss.backward();
  const float eps = 1e-2F;
  for (const std::int64_t flat : {0L, 7L, 14L}) {
    Tensor lp = logits, lm = logits;
    lp[flat] += eps;
    lm[flat] -= eps;
    nn::SoftmaxCrossEntropy fresh;
    const float numeric =
        (fresh.forward(lp, labels) - fresh.forward(lm, labels)) / (2 * eps);
    EXPECT_NEAR(g[flat], numeric, 1e-3F) << "logit " << flat;
  }
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  nn::SoftmaxCrossEntropy loss;
  Rng rng(3);
  const Tensor logits = Tensor::normal(Shape{4, 6}, rng);
  loss.forward(logits, {0, 1, 2, 3});
  const Tensor g = loss.backward();
  for (std::int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 6; ++c) s += g.at({r, c});
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, ValidatesInputs) {
  nn::SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.forward(Tensor(Shape{2, 3}), {0}), InvalidArgument);
  EXPECT_THROW(loss.forward(Tensor(Shape{1, 3}), {3}), InvalidArgument);
  EXPECT_THROW(loss.forward(Tensor(Shape{1, 3}), {-1}), InvalidArgument);
  nn::SoftmaxCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), InvalidArgument);
}

TEST(Accuracy, CountsArgmaxMatches) {
  const Tensor logits(Shape{3, 2}, {1, 0,
                                    0, 1,
                                    2, 5});
  EXPECT_DOUBLE_EQ(nn::accuracy(logits, {0, 1, 1}), 1.0);
  EXPECT_NEAR(nn::accuracy(logits, {1, 1, 1}), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(nn::accuracy(logits, {1, 0, 0}), 0.0);
}

}  // namespace
}  // namespace splitmed
