// Tests for tensor/ops.hpp.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

TEST(Ops, ElementwiseBasics) {
  const Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {4, 5, 6});
  EXPECT_EQ(ops::add(a, b)[1], 7.0F);
  EXPECT_EQ(ops::sub(b, a)[2], 3.0F);
  EXPECT_EQ(ops::mul(a, b)[0], 4.0F);
  EXPECT_EQ(ops::scale(a, 2.0F)[2], 6.0F);
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(ops::add(a, b), ShapeError);
  EXPECT_THROW(ops::mse(a, b), ShapeError);
}

TEST(Ops, MapAppliesFunction) {
  const Tensor a(Shape{3}, {-1, 0, 2});
  const Tensor r = ops::map(a, [](float v) { return v * v; });
  EXPECT_EQ(r[0], 1.0F);
  EXPECT_EQ(r[2], 4.0F);
}

TEST(Ops, AxpyAccumulates) {
  Tensor a(Shape{2}, {1, 1});
  const Tensor b(Shape{2}, {2, 4});
  ops::axpy(0.5F, b, a);
  EXPECT_EQ(a[0], 2.0F);
  EXPECT_EQ(a[1], 3.0F);
}

TEST(Ops, Reductions) {
  const Tensor a(Shape{4}, {1, 2, 3, 4});
  EXPECT_EQ(ops::sum(a), 10.0F);
  EXPECT_EQ(ops::mean(a), 2.5F);
  EXPECT_EQ(ops::max(a), 4.0F);
  EXPECT_FLOAT_EQ(ops::l2_norm(a), std::sqrt(30.0F));
}

TEST(Ops, EmptyReductionsThrow) {
  const Tensor a(Shape{0});
  EXPECT_THROW(ops::mean(a), InvalidArgument);
  EXPECT_THROW(ops::max(a), InvalidArgument);
}

TEST(Ops, MseAndMaxAbsDiff) {
  const Tensor a(Shape{2}, {0, 0});
  const Tensor b(Shape{2}, {3, 4});
  EXPECT_FLOAT_EQ(ops::mse(a, b), 12.5F);
  EXPECT_FLOAT_EQ(ops::max_abs_diff(a, b), 4.0F);
}

TEST(Ops, ArgmaxRows) {
  const Tensor a(Shape{2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = ops::argmax_rows(a);
  ASSERT_EQ(idx.size(), 2U);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, MatmulSmallKnown) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_EQ(c.at({0, 0}), 58.0F);
  EXPECT_EQ(c.at({0, 1}), 64.0F);
  EXPECT_EQ(c.at({1, 0}), 139.0F);
  EXPECT_EQ(c.at({1, 1}), 154.0F);
}

TEST(Ops, MatmulInnerDimMismatchThrows) {
  EXPECT_THROW(ops::matmul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})),
               InvalidArgument);
}

TEST(Ops, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  const Tensor a = Tensor::normal(Shape{4, 5}, rng);
  const Tensor b = Tensor::normal(Shape{4, 6}, rng);
  // matmul_tn(a, b) == transpose(a) * b
  const Tensor tn = ops::matmul_tn(a, b);
  const Tensor ref_tn = ops::matmul(ops::transpose(a), b);
  EXPECT_LT(ops::max_abs_diff(tn, ref_tn), 1e-5F);

  const Tensor c = Tensor::normal(Shape{5, 6}, rng);
  const Tensor d = Tensor::normal(Shape{7, 6}, rng);
  // matmul_nt(c, d) == c * transpose(d)
  const Tensor nt = ops::matmul_nt(c, d);
  const Tensor ref_nt = ops::matmul(c, ops::transpose(d));
  EXPECT_LT(ops::max_abs_diff(nt, ref_nt), 1e-5F);
}

TEST(Ops, TransposeInvolution) {
  Rng rng(4);
  const Tensor a = Tensor::normal(Shape{3, 7}, rng);
  EXPECT_LT(ops::max_abs_diff(ops::transpose(ops::transpose(a)), a), 0.0F + 1e-9F);
}

TEST(Ops, ConcatRows) {
  const Tensor a(Shape{1, 2}, {1, 2});
  const Tensor b(Shape{2, 2}, {3, 4, 5, 6});
  const Tensor c = ops::concat_rows({a, b});
  EXPECT_EQ(c.shape(), Shape({3, 2}));
  EXPECT_EQ(c.at({0, 1}), 2.0F);
  EXPECT_EQ(c.at({2, 0}), 5.0F);
}

TEST(Ops, ConcatRowsValidates) {
  EXPECT_THROW(ops::concat_rows({}), InvalidArgument);
  EXPECT_THROW(
      ops::concat_rows({Tensor(Shape{1, 2}), Tensor(Shape{1, 3})}),
      InvalidArgument);
}

TEST(Ops, SumUsesStableAccumulation) {
  // 1e7 values of 0.1 — float accumulation would drift visibly; the double
  // accumulator keeps relative error tiny.
  Tensor t(Shape{1000000});
  t.fill(0.1F);
  EXPECT_NEAR(ops::sum(t) / 100000.0F, 1.0F, 1e-3F);
}

}  // namespace
}  // namespace splitmed
