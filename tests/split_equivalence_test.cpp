// THE core correctness property (DESIGN.md): the split protocol is a pure
// refactoring of centralized training. With one platform holding all the
// data, one split protocol step must produce BIT-IDENTICAL parameters to a
// centralized SGD step on the same minibatch. Also verifies that measured
// wire bytes equal the analytic ModelStats prediction.
#include <gtest/gtest.h>

#include <numeric>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"
#include "src/models/model_stats.hpp"
#include "src/nn/loss.hpp"
#include "src/optim/sgd.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

data::SyntheticCifar make_dataset(std::int64_t n, std::int64_t classes,
                                  std::int64_t size) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = classes;
  opt.image_size = size;
  return data::SyntheticCifar(opt);
}

core::ModelBuilder mlp_builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

core::ModelBuilder resnet_builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "resnet-mini";
    cfg.image_size = 16;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

/// Runs `rounds` centralized SGD steps drawing batches exactly as platform 0
/// of a single-platform SplitTrainer would (same loader seed derivation).
models::BuiltModel centralized_reference(
    const core::ModelBuilder& builder,
                                         const data::Dataset& train,
                                         const std::vector<std::int64_t>& shard,
                                         std::int64_t batch,
                                         std::int64_t rounds,
                                         const optim::SgdOptions& sgd,
                                         std::uint64_t seed) {
  models::BuiltModel model = builder();
  optim::Sgd opt(model.net.parameters(), sgd);
  Rng loader_rng(seed);
  data::DataLoader loader(train, shard, batch, loader_rng.split(0),
                          /*drop_last=*/true);
  nn::SoftmaxCrossEntropy loss;
  for (std::int64_t r = 0; r < rounds; ++r) {
    data::Batch b = loader.next_batch();
    model.net.zero_grad();
    const Tensor logits = model.net.forward(b.images, true);
    loss.forward(logits, b.labels);
    model.net.backward(loss.backward());
    opt.step();
  }
  return model;
}

void expect_split_equals_centralized(const core::ModelBuilder& builder,
                                     const data::Dataset& train,
                                     std::int64_t batch, std::int64_t rounds) {
  std::vector<std::int64_t> shard(static_cast<std::size_t>(train.size()));
  std::iota(shard.begin(), shard.end(), 0);

  core::SplitConfig cfg;
  cfg.total_batch = batch;
  cfg.rounds = rounds;
  cfg.eval_every = rounds;
  cfg.sgd.learning_rate = 0.05F;
  cfg.sgd.momentum = 0.9F;
  cfg.seed = 2024;
  const auto test = make_dataset(8, 4, train.image_shape().dim(1));
  core::SplitTrainer trainer(builder, train, {shard}, test, cfg);
  trainer.run();

  models::BuiltModel reference = centralized_reference(
      builder, train, shard, batch, rounds, cfg.sgd, cfg.seed);

  // Reassemble the split model's parameters: L1 from the platform, the rest
  // from the server — must equal the centralized model parameter-for-
  // parameter, bit-identically.
  std::vector<nn::Parameter*> split_params;
  for (nn::Parameter* p : trainer.platform(0).l1().parameters()) {
    split_params.push_back(p);
  }
  for (nn::Parameter* p : trainer.server().body().parameters()) {
    split_params.push_back(p);
  }
  const auto ref_params = reference.net.parameters();
  ASSERT_EQ(split_params.size(), ref_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(split_params[i]->value, ref_params[i]->value),
              0.0F)
        << "parameter " << i << " (" << ref_params[i]->name << ") diverged";
  }
}

TEST(SplitEquivalence, MlpSingleStep) {
  const auto train = make_dataset(32, 4, 8);
  expect_split_equals_centralized(mlp_builder(), train, 8, 1);
}

TEST(SplitEquivalence, MlpMultiStepWithMomentum) {
  const auto train = make_dataset(32, 4, 8);
  expect_split_equals_centralized(mlp_builder(), train, 8, 5);
}

TEST(SplitEquivalence, ResNetWithBatchNorm) {
  const auto train = make_dataset(16, 4, 16);
  expect_split_equals_centralized(resnet_builder(), train, 4, 2);
}

TEST(SplitEquivalence, MeasuredBytesMatchAnalyticModel) {
  const auto train = make_dataset(48, 4, 8);
  const auto test = make_dataset(8, 4, 8);
  Rng prng(7);
  const auto partition = data::partition_zipf(train.size(), 3, 1.0, prng);

  core::SplitConfig cfg;
  cfg.total_batch = 12;
  cfg.rounds = 4;
  cfg.eval_every = 4;
  cfg.seed = 5;
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  const auto report = trainer.run();

  models::BuiltModel model = mlp_builder()();
  auto stats = models::ModelStats::analyze(model);
  const std::uint64_t expected =
      4 * stats.split_step_bytes(trainer.minibatches());
  EXPECT_EQ(report.total_bytes, expected);
  EXPECT_EQ(trainer.network().stats().total_bytes(), expected);
  // 4 messages per platform per round.
  EXPECT_EQ(trainer.network().stats().total_messages(), 4U * 3U * 4U);
}

TEST(SplitEquivalence, ScheduleAndThreadsInvariantBytesAndAccuracy) {
  // ISSUE: sequential and overlapped schedules are the same mathematics on
  // the same wire — only sim wall-clock may differ. And neither schedule may
  // react to the substrate thread count. All four (schedule, threads)
  // combinations must report identical byte totals, final accuracy, and
  // loss curves for a 3-platform run.
  const auto train = make_dataset(48, 4, 8);
  const auto test = make_dataset(16, 4, 8);

  std::vector<metrics::TrainReport> reports;
  for (const core::Schedule schedule :
       {core::Schedule::kSequential, core::Schedule::kOverlapped}) {
    for (const int threads : {1, 4}) {
      core::SplitConfig cfg;
      cfg.total_batch = 12;
      cfg.rounds = 4;
      cfg.eval_every = 2;
      cfg.seed = 77;
      cfg.schedule = schedule;
      cfg.threads = threads;
      Rng prng(31);
      const auto partition = data::partition_iid(train.size(), 3, prng);
      core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
      reports.push_back(trainer.run());
      EXPECT_EQ(trainer.network().stats().total_bytes(),
                reports.front().total_bytes);
    }
  }
  set_global_threads(0);

  const auto& ref = reports.front();
  ASSERT_EQ(ref.curve.size(), 2U);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].total_bytes, ref.total_bytes);
    ASSERT_EQ(reports[i].curve.size(), ref.curve.size());
    EXPECT_EQ(reports[i].final_accuracy, ref.final_accuracy);
    for (std::size_t j = 0; j < ref.curve.size(); ++j) {
      EXPECT_EQ(reports[i].curve[j].train_loss, ref.curve[j].train_loss);
      EXPECT_EQ(reports[i].curve[j].cumulative_bytes,
                ref.curve[j].cumulative_bytes);
    }
  }
}

TEST(BoundedStaleness, SinglePlatformMatchesSequential) {
  // With one platform the liveness rule (every round folds in at least one
  // completion) forces each step to finish inside its own round — the
  // bounded-staleness engine degenerates to the sequential schedule and must
  // reproduce its curve bitwise.
  const auto train = make_dataset(32, 4, 8);
  const auto test = make_dataset(8, 4, 8);
  std::vector<metrics::TrainReport> reports;
  for (const core::Schedule schedule :
       {core::Schedule::kSequential, core::Schedule::kBoundedStaleness}) {
    core::SplitConfig cfg;
    cfg.total_batch = 8;
    cfg.rounds = 6;
    cfg.eval_every = 3;
    cfg.schedule = schedule;
    Rng prng(11);
    const auto partition = data::partition_iid(train.size(), 1, prng);
    core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
    reports.push_back(trainer.run());
  }
  ASSERT_EQ(reports[0].curve.size(), reports[1].curve.size());
  EXPECT_EQ(reports[0].total_bytes, reports[1].total_bytes);
  EXPECT_EQ(reports[0].final_accuracy, reports[1].final_accuracy);
  for (std::size_t j = 0; j < reports[0].curve.size(); ++j) {
    EXPECT_EQ(reports[0].curve[j].train_loss, reports[1].curve[j].train_loss);
    EXPECT_EQ(reports[0].curve[j].cumulative_bytes,
              reports[1].curve[j].cumulative_bytes);
  }
}

TEST(BoundedStaleness, DeterministicAcrossIdenticalRuns) {
  // The async schedule's only ordering source is the network's (arrival,
  // sequence) order — a pure function of the config. Two identical runs
  // must agree bitwise on every reported number, stragglers and all.
  const auto train = make_dataset(48, 4, 8);
  const auto test = make_dataset(16, 4, 8);
  std::vector<metrics::TrainReport> reports;
  std::vector<std::vector<std::int64_t>> per_platform_steps;
  for (int run = 0; run < 2; ++run) {
    core::SplitConfig cfg;
    cfg.total_batch = 12;
    cfg.rounds = 8;
    cfg.eval_every = 4;
    cfg.schedule = core::Schedule::kBoundedStaleness;
    cfg.staleness_bound = 2;
    cfg.participation = 0.7;  // exercises the double-draw bernoulli path
    cfg.seed = 1234;
    Rng prng(21);
    const auto partition = data::partition_iid(train.size(), 4, prng);
    core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
    reports.push_back(trainer.run());
    std::vector<std::int64_t> steps;
    for (std::size_t p = 0; p < trainer.num_platforms(); ++p) {
      steps.push_back(trainer.platform(p).steps_completed());
    }
    per_platform_steps.push_back(std::move(steps));
  }
  EXPECT_EQ(per_platform_steps[0], per_platform_steps[1]);
  EXPECT_EQ(reports[0].total_bytes, reports[1].total_bytes);
  EXPECT_EQ(reports[0].total_sim_seconds, reports[1].total_sim_seconds);
  ASSERT_EQ(reports[0].curve.size(), reports[1].curve.size());
  for (std::size_t j = 0; j < reports[0].curve.size(); ++j) {
    EXPECT_EQ(reports[0].curve[j].train_loss, reports[1].curve[j].train_loss);
    EXPECT_EQ(reports[0].curve[j].test_accuracy,
              reports[1].curve[j].test_accuracy);
    EXPECT_EQ(reports[0].curve[j].sim_seconds,
              reports[1].curve[j].sim_seconds);
  }
}

TEST(BoundedStaleness, StragglersFoldInWithoutStallingTheRound) {
  // Heterogeneous hospital WAN: the slowest link straggles. Bounded
  // staleness must (a) finish every begun step by the final full drain,
  // (b) never let a platform run two overlapping steps, and (c) spend no
  // more simulated time than the overlapped schedule's full per-round
  // barrier on the same WAN.
  const auto train = make_dataset(48, 4, 8);
  const auto test = make_dataset(16, 4, 8);

  const auto run_with = [&](core::Schedule schedule) {
    core::SplitConfig cfg;
    cfg.total_batch = 12;
    cfg.rounds = 6;
    cfg.eval_every = 6;
    cfg.schedule = schedule;
    Rng prng(13);
    const auto partition = data::partition_iid(train.size(), 4, prng);
    core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
    auto report = trainer.run();
    std::int64_t total_steps = 0;
    for (std::size_t p = 0; p < trainer.num_platforms(); ++p) {
      EXPECT_GE(trainer.platform(p).steps_completed(), 1);
      EXPECT_LE(trainer.platform(p).steps_completed(), cfg.rounds);
      total_steps += trainer.platform(p).steps_completed();
    }
    // Final round is a full drain: 4 messages per completed step, nothing
    // left in flight.
    EXPECT_TRUE(trainer.network().quiescent());
    EXPECT_EQ(trainer.network().stats().total_messages(),
              static_cast<std::uint64_t>(4 * total_steps));
    return report;
  };

  const auto overlapped = run_with(core::Schedule::kOverlapped);
  const auto bounded = run_with(core::Schedule::kBoundedStaleness);
  EXPECT_LE(bounded.total_sim_seconds, overlapped.total_sim_seconds);
  EXPECT_GT(bounded.final_accuracy, 0.0);
}

TEST(SplitEquivalence, PerKindTrafficIsSymmetric) {
  const auto train = make_dataset(32, 4, 8);
  const auto test = make_dataset(8, 4, 8);
  Rng prng(9);
  const auto partition = data::partition_iid(train.size(), 2, prng);

  core::SplitConfig cfg;
  cfg.total_batch = 8;
  cfg.rounds = 3;
  cfg.eval_every = 3;
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  trainer.run();

  const auto& stats = trainer.network().stats();
  // Activation traffic equals cut-grad traffic (same tensors both ways),
  // and logits traffic equals logit-grad traffic.
  EXPECT_EQ(stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kActivation)),
            stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kCutGrad)));
  EXPECT_EQ(stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kLogits)),
            stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kLogitGrad)));
}

}  // namespace
}  // namespace splitmed
