// THE core correctness property (DESIGN.md): the split protocol is a pure
// refactoring of centralized training. With one platform holding all the
// data, one split protocol step must produce BIT-IDENTICAL parameters to a
// centralized SGD step on the same minibatch. Also verifies that measured
// wire bytes equal the analytic ModelStats prediction.
#include <gtest/gtest.h>

#include <numeric>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"
#include "src/models/model_stats.hpp"
#include "src/nn/loss.hpp"
#include "src/optim/sgd.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

data::SyntheticCifar make_dataset(std::int64_t n, std::int64_t classes,
                                  std::int64_t size) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = classes;
  opt.image_size = size;
  return data::SyntheticCifar(opt);
}

core::ModelBuilder mlp_builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

core::ModelBuilder resnet_builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "resnet-mini";
    cfg.image_size = 16;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

/// Runs `rounds` centralized SGD steps drawing batches exactly as platform 0
/// of a single-platform SplitTrainer would (same loader seed derivation).
models::BuiltModel centralized_reference(
    const core::ModelBuilder& builder,
                                         const data::Dataset& train,
                                         const std::vector<std::int64_t>& shard,
                                         std::int64_t batch,
                                         std::int64_t rounds,
                                         const optim::SgdOptions& sgd,
                                         std::uint64_t seed) {
  models::BuiltModel model = builder();
  optim::Sgd opt(model.net.parameters(), sgd);
  Rng loader_rng(seed);
  data::DataLoader loader(train, shard, batch, loader_rng.split(0),
                          /*drop_last=*/true);
  nn::SoftmaxCrossEntropy loss;
  for (std::int64_t r = 0; r < rounds; ++r) {
    data::Batch b = loader.next_batch();
    model.net.zero_grad();
    const Tensor logits = model.net.forward(b.images, true);
    loss.forward(logits, b.labels);
    model.net.backward(loss.backward());
    opt.step();
  }
  return model;
}

void expect_split_equals_centralized(const core::ModelBuilder& builder,
                                     const data::Dataset& train,
                                     std::int64_t batch, std::int64_t rounds) {
  std::vector<std::int64_t> shard(static_cast<std::size_t>(train.size()));
  std::iota(shard.begin(), shard.end(), 0);

  core::SplitConfig cfg;
  cfg.total_batch = batch;
  cfg.rounds = rounds;
  cfg.eval_every = rounds;
  cfg.sgd.learning_rate = 0.05F;
  cfg.sgd.momentum = 0.9F;
  cfg.seed = 2024;
  const auto test = make_dataset(8, 4, train.image_shape().dim(1));
  core::SplitTrainer trainer(builder, train, {shard}, test, cfg);
  trainer.run();

  models::BuiltModel reference = centralized_reference(
      builder, train, shard, batch, rounds, cfg.sgd, cfg.seed);

  // Reassemble the split model's parameters: L1 from the platform, the rest
  // from the server — must equal the centralized model parameter-for-
  // parameter, bit-identically.
  std::vector<nn::Parameter*> split_params;
  for (nn::Parameter* p : trainer.platform(0).l1().parameters()) {
    split_params.push_back(p);
  }
  for (nn::Parameter* p : trainer.server().body().parameters()) {
    split_params.push_back(p);
  }
  const auto ref_params = reference.net.parameters();
  ASSERT_EQ(split_params.size(), ref_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(split_params[i]->value, ref_params[i]->value),
              0.0F)
        << "parameter " << i << " (" << ref_params[i]->name << ") diverged";
  }
}

TEST(SplitEquivalence, MlpSingleStep) {
  const auto train = make_dataset(32, 4, 8);
  expect_split_equals_centralized(mlp_builder(), train, 8, 1);
}

TEST(SplitEquivalence, MlpMultiStepWithMomentum) {
  const auto train = make_dataset(32, 4, 8);
  expect_split_equals_centralized(mlp_builder(), train, 8, 5);
}

TEST(SplitEquivalence, ResNetWithBatchNorm) {
  const auto train = make_dataset(16, 4, 16);
  expect_split_equals_centralized(resnet_builder(), train, 4, 2);
}

TEST(SplitEquivalence, MeasuredBytesMatchAnalyticModel) {
  const auto train = make_dataset(48, 4, 8);
  const auto test = make_dataset(8, 4, 8);
  Rng prng(7);
  const auto partition = data::partition_zipf(train.size(), 3, 1.0, prng);

  core::SplitConfig cfg;
  cfg.total_batch = 12;
  cfg.rounds = 4;
  cfg.eval_every = 4;
  cfg.seed = 5;
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  const auto report = trainer.run();

  models::BuiltModel model = mlp_builder()();
  auto stats = models::ModelStats::analyze(model);
  const std::uint64_t expected =
      4 * stats.split_step_bytes(trainer.minibatches());
  EXPECT_EQ(report.total_bytes, expected);
  EXPECT_EQ(trainer.network().stats().total_bytes(), expected);
  // 4 messages per platform per round.
  EXPECT_EQ(trainer.network().stats().total_messages(), 4U * 3U * 4U);
}

TEST(SplitEquivalence, ScheduleAndThreadsInvariantBytesAndAccuracy) {
  // ISSUE: sequential and overlapped schedules are the same mathematics on
  // the same wire — only sim wall-clock may differ. And neither schedule may
  // react to the substrate thread count. All four (schedule, threads)
  // combinations must report identical byte totals, final accuracy, and
  // loss curves for a 3-platform run.
  const auto train = make_dataset(48, 4, 8);
  const auto test = make_dataset(16, 4, 8);

  std::vector<metrics::TrainReport> reports;
  for (const core::Schedule schedule :
       {core::Schedule::kSequential, core::Schedule::kOverlapped}) {
    for (const int threads : {1, 4}) {
      core::SplitConfig cfg;
      cfg.total_batch = 12;
      cfg.rounds = 4;
      cfg.eval_every = 2;
      cfg.seed = 77;
      cfg.schedule = schedule;
      cfg.threads = threads;
      Rng prng(31);
      const auto partition = data::partition_iid(train.size(), 3, prng);
      core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
      reports.push_back(trainer.run());
      EXPECT_EQ(trainer.network().stats().total_bytes(),
                reports.front().total_bytes);
    }
  }
  set_global_threads(0);

  const auto& ref = reports.front();
  ASSERT_EQ(ref.curve.size(), 2U);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].total_bytes, ref.total_bytes);
    ASSERT_EQ(reports[i].curve.size(), ref.curve.size());
    EXPECT_EQ(reports[i].final_accuracy, ref.final_accuracy);
    for (std::size_t j = 0; j < ref.curve.size(); ++j) {
      EXPECT_EQ(reports[i].curve[j].train_loss, ref.curve[j].train_loss);
      EXPECT_EQ(reports[i].curve[j].cumulative_bytes,
                ref.curve[j].cumulative_bytes);
    }
  }
}

TEST(SplitEquivalence, PerKindTrafficIsSymmetric) {
  const auto train = make_dataset(32, 4, 8);
  const auto test = make_dataset(8, 4, 8);
  Rng prng(9);
  const auto partition = data::partition_iid(train.size(), 2, prng);

  core::SplitConfig cfg;
  cfg.total_batch = 8;
  cfg.rounds = 3;
  cfg.eval_every = 3;
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  trainer.run();

  const auto& stats = trainer.network().stats();
  // Activation traffic equals cut-grad traffic (same tensors both ways),
  // and logits traffic equals logit-grad traffic.
  EXPECT_EQ(stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kActivation)),
            stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kCutGrad)));
  EXPECT_EQ(stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kLogits)),
            stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kLogitGrad)));
}

}  // namespace
}  // namespace splitmed
