// End-to-end churn harness tests: training under the membership subsystem
// (liveness leases, deadline rounds, quarantine, rejoin handshakes) driven
// by deterministic ChurnPlans, composed with WAN fault injection and the
// crash-recovery checkpoint. The golden contract mirrors fault_test /
// crash_resume_test: same seed => bitwise-identical curves, bytes, and
// quarantine ledger, across runs AND thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/membership.hpp"
#include "src/core/platform.hpp"
#include "src/core/server.hpp"
#include "src/core/split_model.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"
#include "src/models/mlp.hpp"
#include "src/net/network.hpp"
#include "src/nn/param_util.hpp"

namespace splitmed {
namespace {

namespace fs = std::filesystem;

data::SyntheticCifar make_train(std::int64_t n) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  return data::SyntheticCifar(opt);
}

core::ModelBuilder mlp_builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

core::SplitConfig membership_config() {
  core::SplitConfig cfg;
  cfg.total_batch = 12;
  cfg.rounds = 12;
  cfg.eval_every = 4;
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  cfg.membership.enabled = true;
  return cfg;
}

/// Exact-double equality over the full reproducible surface, membership
/// counters included.
void expect_identical(const metrics::TrainReport& a,
                      const metrics::TrainReport& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].train_loss, b.curve[i].train_loss) << "point " << i;
    EXPECT_EQ(a.curve[i].test_accuracy, b.curve[i].test_accuracy)
        << "point " << i;
    EXPECT_EQ(a.curve[i].cumulative_bytes, b.curve[i].cumulative_bytes)
        << "point " << i;
    EXPECT_EQ(a.curve[i].sim_seconds, b.curve[i].sim_seconds) << "point " << i;
  }
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_EQ(a.skipped_steps, b.skipped_steps);
  EXPECT_EQ(a.examples_lost, b.examples_lost);
  EXPECT_EQ(a.rejected_updates, b.rejected_updates);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.void_rounds, b.void_rounds);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
}

// --- config wiring ----------------------------------------------------------

TEST(ChurnConfig, SplitConfigValidateNamesTheContradiction) {
  // A churn plan without the membership subsystem has no machinery to run it.
  core::SplitConfig cfg;
  cfg.churn.crashes.push_back(core::CrashEvent{0, 2, 1.0,
                                               core::RejoinMode::kWarm});
  EXPECT_THROW(cfg.validate(3), InvalidArgument);

  // Membership subsumes participation sampling.
  core::SplitConfig part;
  part.membership.enabled = true;
  part.participation = 0.5;
  EXPECT_THROW(part.validate(3), InvalidArgument);

  // Membership requires the sequential schedule.
  core::SplitConfig sched;
  sched.membership.enabled = true;
  sched.schedule = core::Schedule::kOverlapped;
  EXPECT_THROW(sched.validate(3), InvalidArgument);

  // min_quorum beyond the roster can never be met.
  core::SplitConfig quorum;
  quorum.membership.enabled = true;
  quorum.membership.min_quorum = 9;
  EXPECT_THROW(quorum.validate(3), InvalidArgument);

  core::SplitConfig ok;
  ok.membership.enabled = true;
  EXPECT_NO_THROW(ok.validate(3));
}

// --- plain membership (no churn) --------------------------------------------

TEST(ChurnTraining, MembershipWithEmptyPlanStillTrains) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  core::SplitTrainer trainer(mlp_builder(), train, partition, test,
                             membership_config());
  const auto report = trainer.run();
  ASSERT_NE(trainer.membership(), nullptr);
  const auto& led = trainer.membership()->ledger();
  EXPECT_EQ(report.steps_completed, 12);
  EXPECT_GE(led.heartbeats_fresh, 3);  // every platform's first beacon
  EXPECT_EQ(led.quarantines, 0);
  EXPECT_EQ(led.crashes, 0);
  EXPECT_EQ(report.void_rounds, 0);
  EXPECT_EQ(report.examples_lost, 0);
  EXPECT_EQ(report.rejected_updates, 0);
  for (const auto& p : report.curve) {
    EXPECT_TRUE(std::isfinite(p.train_loss));
  }
  EXPECT_GT(report.final_accuracy, 0.4);
}

// --- determinism across runs and thread counts ------------------------------

TEST(ChurnTraining, SameChurnSeedIsBitwiseAcrossThreadCounts) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  core::ChurnRates rates;
  rates.crash_rate = 0.04;
  rates.mean_offline_sec = 0.3;
  rates.poison_rate = 0.03;
  rates.poison_rounds = 2;

  const auto run = [&](int threads) {
    auto cfg = membership_config();
    cfg.rounds = 16;
    cfg.eval_every = 4;
    cfg.threads = threads;
    cfg.membership.probation_readmit_prob = 1.0;
    cfg.churn = core::ChurnPlan::random(cfg.seed, 3, cfg.rounds, rates);
    Rng prng(1);
    const auto partition = data::partition_iid(train.size(), 3, prng);
    core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
    const auto report = trainer.run();
    return std::pair{report, trainer.membership()->ledger().fingerprint()};
  };

  const auto [r1, fp1] = run(1);
  const auto [r2, fp2] = run(3);
  expect_identical(r1, r2);
  EXPECT_EQ(fp1, fp2) << "quarantine ledger diverged across thread counts";
}

// --- poisoning and quarantine -----------------------------------------------

TEST(ChurnTraining, PoisonedPlatformIsQuarantinedWhileLossStaysFinite) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = membership_config();
  cfg.rounds = 16;
  cfg.eval_every = 2;
  cfg.membership.strikes_to_quarantine = 2;
  cfg.membership.quarantine_rounds = 4;
  cfg.membership.probation_readmit_prob = 1.0;
  // Platform 1 norm-bombs rounds 4..9 — history is warmed by rounds 1..3
  // (9 accepted activations against the default warmup of 8).
  cfg.churn.poisons.push_back(core::PoisonEvent{
      1, /*round=*/4, /*duration_rounds=*/6, core::PoisonKind::kNormBomb,
      1.0e6F});
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  const auto& led = trainer.membership()->ledger();

  // Two bombed rounds struck it out; the rest of the spell it sat in
  // quarantine, then probation (prob 1.0) readmitted it after the poison
  // spell ended.
  EXPECT_EQ(report.quarantines, 1);
  EXPECT_EQ(report.rejected_updates, 2);
  EXPECT_EQ(led.rejected_normbomb, 2);
  EXPECT_EQ(trainer.platform(1).rejected_steps(), 2);
  EXPECT_GE(led.readmissions, 1);
  // The poison never reached an optimizer: the global loss stayed finite and
  // the healthy platforms kept learning.
  ASSERT_GE(report.curve.size(), 2U);
  for (const auto& p : report.curve) {
    EXPECT_TRUE(std::isfinite(p.train_loss)) << "round " << p.step;
  }
  EXPECT_LT(report.curve.back().train_loss, report.curve.front().train_loss);
  EXPECT_GT(report.final_accuracy, 0.4);
}

TEST(ChurnTraining, NonFinitePoisonIsRejectedBeforeTraining) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = membership_config();
  cfg.rounds = 8;
  cfg.eval_every = 2;
  cfg.churn.poisons.push_back(core::PoisonEvent{
      2, /*round=*/3, /*duration_rounds=*/2, core::PoisonKind::kNonFinite,
      1.0F});
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_EQ(trainer.membership()->ledger().rejected_nonfinite, 2);
  for (const auto& p : report.curve) {
    EXPECT_TRUE(std::isfinite(p.train_loss));
  }
}

// --- crashes, outages, rejoins ----------------------------------------------

TEST(ChurnTraining, CrashOutageWarmRejoinAndExampleAccounting) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = membership_config();
  cfg.rounds = 12;
  // Each sequential round moves >= 8 frames at >= 20ms latency, so a 0.3s
  // outage is served within a couple of rounds — well before the run ends.
  cfg.churn.crashes.push_back(core::CrashEvent{0, /*round=*/3, 0.3,
                                               core::RejoinMode::kWarm});
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  const auto& led = trainer.membership()->ledger();
  EXPECT_EQ(led.crashes, 1);
  EXPECT_EQ(led.rejoins_warm, 1);
  EXPECT_EQ(led.rejoins_cold, 0);
  // The outage cost platform 0 at least one round's minibatch.
  EXPECT_GE(led.outage_examples_lost, trainer.minibatches()[0]);
  EXPECT_EQ(report.examples_lost, led.outage_examples_lost);
  // It came back and kept training (warm: its L1 survived).
  EXPECT_GT(trainer.platform(0).steps_completed(), 3);
  EXPECT_EQ(trainer.platform(0).rejoins_completed(), 1);
  EXPECT_GT(report.final_accuracy, 0.4);
}

TEST(ColdRejoin, GenesisL1IsRestoredBitwise) {
  // Unit fixture: one platform, one server, a cold join handshake. The
  // server holds only the GENESIS flattened L1 (captured when every replica
  // was identical) — never the platform's current weights — so a cold rejoin
  // restarts L1 from genesis, bitwise.
  const auto dataset = make_train(8);
  net::Network network;
  const NodeId server_id = network.add_node("server");
  const NodeId platform_id = network.add_node("platform");
  models::MlpConfig mcfg;
  mcfg.input_shape = Shape{3, 8, 8};
  mcfg.hidden = {8};
  mcfg.num_classes = 4;
  auto model = models::make_mlp(mcfg);
  auto parts = core::split_at(std::move(model.net), model.default_cut);
  core::CentralServer server(server_id, std::move(parts.server),
                             optim::SgdOptions{});
  core::PlatformNode platform(platform_id, server_id,
                              std::move(parts.platform),
                              data::DataLoader(dataset, {0, 1, 2, 3}, 2,
                                               Rng(1)),
                              optim::SgdOptions{});

  core::MembershipConfig mem;
  mem.enabled = true;
  core::MembershipService service(mem, core::ChurnPlan{}, 1, 7, {2});
  server.set_membership(&service, {platform_id});
  const Tensor genesis = nn::flatten_values(platform.l1().parameters());
  server.set_genesis_l1(nn::flatten_values(platform.l1().parameters()));

  // The platform's local state diverges (training happened), then is "lost".
  for (nn::Parameter* p : platform.l1().parameters()) {
    for (float& v : p->value.data()) v += 0.5F;
  }

  platform.send_join_request(network, 0, 1, core::RejoinMode::kCold);
  EXPECT_TRUE(platform.awaiting_join());
  server.handle(network, network.receive(server_id));
  platform.handle(network, network.receive(platform_id));
  EXPECT_FALSE(platform.awaiting_join());
  EXPECT_EQ(platform.rejoins_completed(), 1);

  const Tensor after = nn::flatten_values(platform.l1().parameters());
  ASSERT_EQ(after.numel(), genesis.numel());
  for (std::int64_t i = 0; i < after.numel(); ++i) {
    EXPECT_EQ(after.data()[static_cast<std::size_t>(i)],
              genesis.data()[static_cast<std::size_t>(i)])
        << "L1 parameter " << i << " not restored to genesis";
  }
}

// --- deadline rounds --------------------------------------------------------

TEST(ChurnTraining, TightDeadlineDegradesToOneStepPerRound) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = membership_config();
  cfg.rounds = 9;
  cfg.eval_every = 3;
  // A deadline shorter than any frame flight time: after the liveness floor
  // (the first eligible platform always steps), everyone else is gated.
  cfg.membership.round_deadline_sec = 1.0e-6;
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_EQ(report.steps_completed, 9);
  EXPECT_EQ(report.deadline_misses, 2 * 9);  // K-1 platforms gated each round
  EXPECT_EQ(report.void_rounds, 0);          // min_quorum 1: degraded, valid
  // The rotated start order spreads the single slot fairly.
  EXPECT_EQ(trainer.platform(0).steps_completed(), 3);
  EXPECT_EQ(trainer.platform(1).steps_completed(), 3);
  EXPECT_EQ(trainer.platform(2).steps_completed(), 3);
}

TEST(ChurnTraining, BelowQuorumRoundIsVoidAndCarriesLoss) {
  const auto train = make_train(64);
  const auto test = make_train(16);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  auto cfg = membership_config();
  cfg.total_batch = 8;
  cfg.rounds = 8;
  cfg.eval_every = 1;
  cfg.membership.min_quorum = 2;
  cfg.churn.crashes.push_back(core::CrashEvent{0, /*round=*/3, 0.05,
                                               core::RejoinMode::kWarm});
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_GE(report.void_rounds, 1);
  ASSERT_EQ(report.curve.size(), 8U);
  // Round 3 closed with one of two required steps: void — its curve point
  // carries round 2's loss instead of fabricating one from half a quorum.
  EXPECT_EQ(report.curve[2].train_loss, report.curve[1].train_loss);
  EXPECT_TRUE(std::isfinite(report.curve[7].train_loss));
  EXPECT_GE(report.examples_lost, trainer.minibatches()[0]);
}

// --- chaos: churn + WAN faults + crash/resume -------------------------------

/// The chaos configuration whose ledger fingerprint is pinned below: random
/// poison spells, an explicit mid-run outage spanning the checkpoint round,
/// and WAN fault injection, all at once.
core::SplitConfig chaos_config() {
  auto cfg = membership_config();
  cfg.rounds = 12;
  cfg.eval_every = 3;
  cfg.membership.strikes_to_quarantine = 2;
  cfg.membership.quarantine_rounds = 2;
  cfg.membership.probation_readmit_prob = 1.0;
  core::ChurnRates rates;
  rates.poison_rate = 0.05;
  rates.poison_rounds = 2;
  cfg.churn = core::ChurnPlan::random(cfg.seed, 3, cfg.rounds, rates);
  // One scripted outage long enough to span the round-6 checkpoint: the
  // checkpoint is taken MID-OUTAGE and resume must finish serving it.
  cfg.churn.crashes.push_back(core::CrashEvent{1, /*round=*/5, 1.0,
                                               core::RejoinMode::kCold});
  cfg.faults.drop_rate = 0.03;
  cfg.faults.duplicate_rate = 0.03;
  cfg.faults.corrupt_rate = 0.03;
  cfg.recovery.timeout_sec = 5.0;
  cfg.recovery.backoff = 1.0;
  cfg.recovery.max_retries = 2;
  return cfg;
}

struct ChaosResult {
  metrics::TrainReport report;
  std::uint64_t ledger_fingerprint = 0;
  std::int64_t rejoins_cold = 0;
};

ChaosResult run_chaos(const core::SplitConfig& cfg) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
  ChaosResult out;
  out.report = trainer.run();
  out.ledger_fingerprint = trainer.membership()->ledger().fingerprint();
  out.rejoins_cold = trainer.membership()->ledger().rejoins_cold;
  return out;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

TEST(ChurnChaos, GoldenResumeThroughMidOutageCheckpoint) {
  const ChaosResult golden = run_chaos(chaos_config());
  EXPECT_EQ(golden.rejoins_cold, 1);  // the scripted outage was served
  EXPECT_GT(golden.report.examples_lost, 0);

  // Crash after round 6 — mid-outage for platform 1 — resume, finish.
  const std::string dir = fresh_dir("churn_chaos_resume");
  {
    auto cfg = chaos_config();
    cfg.rounds = 6;
    cfg.checkpoint_every = 6;
    cfg.checkpoint_dir = dir;
    (void)run_chaos(cfg);
  }
  auto cfg = chaos_config();
  cfg.resume_from = dir;
  const ChaosResult resumed = run_chaos(cfg);
  expect_identical(golden.report, resumed.report);
  EXPECT_EQ(golden.ledger_fingerprint, resumed.ledger_fingerprint)
      << "membership ledger diverged across checkpoint/resume";

  // Same seed, same plan: the ledger fingerprint is pinned. A change here
  // means churn semantics changed — update deliberately, never casually.
  const ChaosResult again = run_chaos(chaos_config());
  EXPECT_EQ(golden.ledger_fingerprint, again.ledger_fingerprint);
  fs::remove_all(dir);
}

TEST(ChurnChaos, ResumeRefusesRosterOrMembershipMismatch) {
  const auto train = make_train(96);
  const auto test = make_train(24);
  const std::string dir = fresh_dir("churn_roster_mismatch");
  {
    auto cfg = membership_config();
    cfg.rounds = 4;
    cfg.checkpoint_every = 4;
    cfg.checkpoint_dir = dir;
    Rng prng(1);
    const auto partition = data::partition_iid(train.size(), 3, prng);
    core::SplitTrainer trainer(mlp_builder(), train, partition, test, cfg);
    (void)trainer.run();
  }

  // Same platform count, different shard split: the per-platform roster in
  // the manifest disagrees and resume is refused naming both sizes.
  {
    auto cfg = membership_config();
    cfg.resume_from = dir;
    data::Partition skewed(3);
    for (std::int64_t i = 0; i < train.size(); ++i) {
      skewed[i < 60 ? (i < 30 ? 0U : 1U) : 2U].push_back(i);
    }
    EXPECT_THROW(core::SplitTrainer(mlp_builder(), train, skewed, test, cfg),
                 SerializationError);
  }

  // Membership off against a membership checkpoint: refused, not silently
  // dropped — the ledger and lifecycle state would be lost.
  {
    auto cfg = membership_config();
    cfg.membership.enabled = false;
    cfg.resume_from = dir;
    Rng prng(1);
    const auto partition = data::partition_iid(train.size(), 3, prng);
    EXPECT_THROW(
        core::SplitTrainer(mlp_builder(), train, partition, test, cfg),
        SerializationError);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace splitmed
