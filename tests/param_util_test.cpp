// Tests for nn/param_util.hpp — the flatten/scatter machinery the weight-
// exchange baselines and the L1-sync extension depend on.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/param_util.hpp"
#include "src/nn/sequential.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

nn::Sequential make_net(std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(4, 3, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(3, 2, rng);
  return seq;
}

TEST(ParamUtil, NumelSumsAllParameters) {
  auto net = make_net(1);
  // 4*3 + 3 + 3*2 + 2 = 23.
  EXPECT_EQ(nn::parameter_numel(net.parameters()), 23);
}

TEST(ParamUtil, FlattenLoadValuesRoundTrip) {
  auto a = make_net(1);
  auto b = make_net(2);
  const Tensor flat = nn::flatten_values(a.parameters());
  EXPECT_EQ(flat.shape(), Shape({23}));
  nn::load_values(b.parameters(), flat);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(pa[i]->value, pb[i]->value), 0.0F);
  }
}

TEST(ParamUtil, FlattenPreservesParameterOrder) {
  auto net = make_net(3);
  const auto params = net.parameters();
  params[0]->value.fill(1.0F);  // first linear weight (12 elems)
  params[1]->value.fill(2.0F);  // first linear bias (3)
  params[2]->value.fill(3.0F);  // second linear weight (6)
  params[3]->value.fill(4.0F);  // second linear bias (2)
  const Tensor flat = nn::flatten_values(params);
  EXPECT_EQ(flat[0], 1.0F);
  EXPECT_EQ(flat[11], 1.0F);
  EXPECT_EQ(flat[12], 2.0F);
  EXPECT_EQ(flat[15], 3.0F);
  EXPECT_EQ(flat[21], 4.0F);
}

TEST(ParamUtil, GradientFlattenAndScatter) {
  auto net = make_net(4);
  const auto params = net.parameters();
  for (auto* p : params) p->grad.fill(5.0F);
  const Tensor g = nn::flatten_gradients(params);
  EXPECT_EQ(g.numel(), 23);
  for (std::int64_t i = 0; i < g.numel(); ++i) EXPECT_EQ(g[i], 5.0F);

  Tensor replacement = Tensor::full(Shape{23}, -1.0F);
  nn::load_gradients(params, replacement);
  EXPECT_EQ(params[2]->grad[0], -1.0F);
}

TEST(ParamUtil, AxpyValuesAccumulates) {
  auto net = make_net(5);
  const auto params = net.parameters();
  for (auto* p : params) p->value.fill(1.0F);
  const Tensor delta = Tensor::full(Shape{23}, 2.0F);
  nn::axpy_values(params, 0.5F, delta);
  EXPECT_FLOAT_EQ(params[0]->value[0], 2.0F);
  EXPECT_FLOAT_EQ(params[3]->value[1], 2.0F);
}

TEST(ParamUtil, SizeMismatchRejected) {
  auto net = make_net(6);
  const Tensor wrong(Shape{10});
  EXPECT_THROW(nn::load_values(net.parameters(), wrong), InvalidArgument);
  EXPECT_THROW(nn::load_gradients(net.parameters(), wrong), InvalidArgument);
  EXPECT_THROW(nn::axpy_values(net.parameters(), 1.0F, wrong),
               InvalidArgument);
  const Tensor wrong_rank(Shape{23, 1});
  EXPECT_THROW(nn::load_values(net.parameters(), wrong_rank),
               InvalidArgument);
}

TEST(ParamUtil, NullParameterRejected) {
  std::vector<nn::Parameter*> params = {nullptr};
  EXPECT_THROW(nn::parameter_numel(params), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
