// Tests for models/: architectures produce correct shapes, the factory
// dispatches, and the analytic ModelStats byte model is internally coherent.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/models/factory.hpp"
#include "src/models/mlp.hpp"
#include "src/models/model_stats.hpp"
#include "src/models/resnet.hpp"
#include "src/models/vgg.hpp"
#include "src/serial/message.hpp"
#include "src/serial/tensor_codec.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

models::FactoryConfig mini_cfg(const std::string& name) {
  models::FactoryConfig cfg;
  cfg.name = name;
  cfg.image_size = 16;
  cfg.num_classes = 10;
  return cfg;
}

TEST(VggModel, MiniForwardShape) {
  auto model = models::build_model(mini_cfg("vgg-mini"));
  EXPECT_EQ(model.net.output_shape(Shape{2, 3, 16, 16}), Shape({2, 10}));
  const Tensor y = model.net.forward(Tensor(Shape{2, 3, 16, 16}), false);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
  EXPECT_EQ(model.default_cut, 2U);
  EXPECT_EQ(model.name, "vgg-mini");
}

TEST(VggModel, Vgg16ParamCountMatchesLiterature) {
  models::VggConfig cfg;
  cfg.variant = models::VggVariant::kVgg16;
  cfg.image_size = 32;
  cfg.num_classes = 10;
  auto model = models::make_vgg(cfg);
  auto stats = models::ModelStats::analyze(model);
  // CIFAR VGG-16 with 4096-wide head: conv ~14.7M + fc (512*4096 + 4096*4096
  // + 4096*10) ~ 18.9M => ~33.6M total.
  EXPECT_GT(stats.total_params, 33'000'000);
  EXPECT_LT(stats.total_params, 34'500'000);
  // L1 = first conv (3->64, 3x3): 1792 params.
  EXPECT_EQ(stats.platform_params, 64 * 27 + 64);
  // Cut activation: 64x32x32.
  EXPECT_EQ(stats.cut_activation_chw, Shape({64, 32, 32}));
}

TEST(VggModel, RejectsIncompatibleImageSize) {
  models::VggConfig cfg;
  cfg.variant = models::VggVariant::kVgg16;
  cfg.image_size = 20;  // not divisible by 2^5
  EXPECT_THROW(models::make_vgg(cfg), InvalidArgument);
}

TEST(ResNetModel, MiniForwardShape) {
  auto model = models::build_model(mini_cfg("resnet-mini"));
  const Tensor y = model.net.forward(Tensor(Shape{2, 3, 16, 16}), false);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
  EXPECT_EQ(model.default_cut, 3U);  // conv + bn + relu
}

TEST(ResNetModel, ResNet18ParamCountMatchesLiterature) {
  models::ResNetConfig cfg;
  cfg.variant = models::ResNetVariant::kResNet18;
  cfg.image_size = 32;
  cfg.num_classes = 10;
  auto model = models::make_resnet(cfg);
  auto stats = models::ModelStats::analyze(model);
  // ~11.2M params (CIFAR stem variant).
  EXPECT_GT(stats.total_params, 10'500'000);
  EXPECT_LT(stats.total_params, 11'500'000);
}

TEST(ResNetModel, ResNet20ParamCountMatchesLiterature) {
  models::ResNetConfig cfg;
  cfg.variant = models::ResNetVariant::kResNet20;
  cfg.image_size = 32;
  auto model = models::make_resnet(cfg);
  auto stats = models::ModelStats::analyze(model);
  // He et al. report 0.27M for ResNet-20 on CIFAR.
  EXPECT_GT(stats.total_params, 250'000);
  EXPECT_LT(stats.total_params, 300'000);
}

TEST(MlpModel, ForwardShapeAndCut) {
  models::MlpConfig cfg;
  cfg.input_shape = Shape{1, 4, 4};
  cfg.hidden = {8};
  cfg.num_classes = 3;
  auto model = models::make_mlp(cfg);
  const Tensor y = model.net.forward(Tensor(Shape{5, 1, 4, 4}), false);
  EXPECT_EQ(y.shape(), Shape({5, 3}));
  EXPECT_EQ(model.default_cut, 3U);
}

TEST(Factory, AllNamesBuild) {
  for (const auto& name : models::model_names()) {
    models::FactoryConfig cfg = mini_cfg(name);
    cfg.image_size = 32;  // every variant supports 32
    auto model = models::build_model(cfg);
    EXPECT_EQ(model.name, name);
    EXPECT_GT(model.net.size(), model.default_cut);
    EXPECT_EQ(model.net.output_shape(Shape{1, 3, 32, 32}), Shape({1, 10}));
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(models::build_model(mini_cfg("alexnet")), InvalidArgument);
}

TEST(Factory, SameSeedGivesIdenticalWeights) {
  auto a = models::build_model(mini_cfg("vgg-mini"));
  auto b = models::build_model(mini_cfg("vgg-mini"));
  const auto pa = a.net.parameters();
  const auto pb = b.net.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(pa[i]->value, pb[i]->value), 0.0F);
  }
}


TEST(VggModel, BatchNormVariantShiftsCutAndAddsParams) {
  auto plain = models::build_model(mini_cfg("vgg-mini"));
  auto bn = models::build_model(mini_cfg("vgg-mini-bn"));
  EXPECT_EQ(plain.default_cut, 2U);   // conv + relu
  EXPECT_EQ(bn.default_cut, 3U);      // conv + bn + relu
  auto plain_stats = models::ModelStats::analyze(plain);
  auto bn_stats = models::ModelStats::analyze(bn);
  EXPECT_GT(bn_stats.total_params, plain_stats.total_params);
  // Same cut activation geometry (BN is shape-preserving).
  EXPECT_EQ(bn_stats.cut_activation_chw, plain_stats.cut_activation_chw);
  const Tensor y = bn.net.forward(Tensor(Shape{2, 3, 16, 16}), true);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST(ModelStats, SplitsParamsAtCut) {
  auto model = models::build_model(mini_cfg("vgg-mini"));
  auto stats = models::ModelStats::analyze(model);
  EXPECT_EQ(stats.total_params, stats.platform_params + stats.server_params);
  EXPECT_GT(stats.platform_params, 0);
  EXPECT_GT(stats.server_params, stats.platform_params);
}

TEST(ModelStats, MessageBytesMatchCodec) {
  auto model = models::build_model(mini_cfg("vgg-mini"));
  auto stats = models::ModelStats::analyze(model);
  const std::int64_t batch = 5;
  std::vector<std::int64_t> dims = {batch};
  for (const auto d : stats.cut_activation_chw.dims()) dims.push_back(d);
  EXPECT_EQ(stats.activation_message_bytes(batch),
            Envelope::kEnvelopeHeaderBytes +
                encoded_tensor_bytes(Shape(dims)));
  EXPECT_EQ(stats.logits_message_bytes(batch),
            Envelope::kEnvelopeHeaderBytes +
                encoded_tensor_bytes(Shape{batch, 10}));
  EXPECT_EQ(stats.parameter_message_bytes(),
            Envelope::kEnvelopeHeaderBytes +
                encoded_tensor_bytes(Shape{stats.total_params}));
}

TEST(ModelStats, SplitStepSumsFourMessagesPerPlatform) {
  auto model = models::build_model(mini_cfg("vgg-mini"));
  auto stats = models::ModelStats::analyze(model);
  const std::vector<std::int64_t> batches = {4, 4};
  EXPECT_EQ(stats.split_step_bytes(batches),
            2 * (2 * stats.activation_message_bytes(4) +
                 2 * stats.logits_message_bytes(4)));
  EXPECT_EQ(stats.split_step_bytes_uniform(8, 2),
            stats.split_step_bytes(batches));
}

TEST(ModelStats, UnevenUniformSplitDistributesRemainder) {
  auto model = models::build_model(mini_cfg("vgg-mini"));
  auto stats = models::ModelStats::analyze(model);
  // 7 across 2 platforms = {4, 3}.
  EXPECT_EQ(stats.split_step_bytes_uniform(7, 2),
            stats.split_step_bytes(std::vector<std::int64_t>{4, 3}));
}

TEST(ModelStats, SyncSgdAndFedAvgScaleWithParticipants) {
  auto model = models::build_model(mini_cfg("resnet-mini"));
  auto stats = models::ModelStats::analyze(model);
  EXPECT_EQ(stats.syncsgd_step_bytes(4), 4 * stats.syncsgd_step_bytes(1));
  EXPECT_EQ(stats.fedavg_round_bytes(3),
            3 * 2 * stats.parameter_message_bytes());
  EXPECT_EQ(stats.cyclic_cycle_bytes(5),
            5 * stats.parameter_message_bytes());
}

TEST(ModelStats, PaperScaleSplitBeatsSyncSgdPerEpoch) {
  // The paper's headline: for VGG on CIFAR shapes, the proposed framework
  // moves fewer bytes than Large-Scale SGD. Check at paper scale (50k
  // images, batch 128, K=4) the per-epoch ordering holds.
  models::VggConfig cfg;
  cfg.variant = models::VggVariant::kVgg16;
  cfg.image_size = 32;
  auto model = models::make_vgg(cfg);
  auto stats = models::ModelStats::analyze(model);
  const std::int64_t dataset = 50'000, batch = 128, k = 4;
  const std::int64_t steps = (dataset + batch - 1) / batch;
  const auto split = stats.split_epoch_bytes(dataset, k, steps);
  const auto sgd = stats.syncsgd_epoch_bytes(dataset, batch, k);
  EXPECT_LT(split, sgd);
}

TEST(ModelStats, InvalidCutRejected) {
  auto model = models::build_model(mini_cfg("vgg-mini"));
  EXPECT_THROW(models::ModelStats::analyze(model, 0), InvalidArgument);
  EXPECT_THROW(models::ModelStats::analyze(model, model.net.size()),
               InvalidArgument);
}

}  // namespace
}  // namespace splitmed
