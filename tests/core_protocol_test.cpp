// Tests for core/: minibatch policy, model splitting, protocol message
// handling and state-machine enforcement.
#include <gtest/gtest.h>

#include <numeric>

#include "src/common/error.hpp"
#include "src/core/minibatch_policy.hpp"
#include "src/core/platform.hpp"
#include "src/core/protocol.hpp"
#include "src/core/server.hpp"
#include "src/core/split_model.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/mlp.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

TEST(MinibatchPolicy, UniformIgnoresShardSizes) {
  const auto s = core::minibatch_sizes(core::MinibatchPolicy::kUniform, 10,
                                       {100, 1, 1});
  EXPECT_EQ(s, (std::vector<std::int64_t>{4, 3, 3}));
}

TEST(MinibatchPolicy, ProportionalTracksShardSizes) {
  const auto s = core::minibatch_sizes(core::MinibatchPolicy::kProportional,
                                       12, {600, 300, 300});
  EXPECT_EQ(s, (std::vector<std::int64_t>{6, 3, 3}));
}

TEST(MinibatchPolicy, ProportionalSumsExactlyToTotal) {
  for (const std::int64_t total : {7L, 16L, 33L}) {
    const auto s = core::minibatch_sizes(core::MinibatchPolicy::kProportional,
                                         total, {13, 7, 29, 5});
    EXPECT_EQ(std::accumulate(s.begin(), s.end(), std::int64_t{0}), total);
    for (const auto v : s) EXPECT_GE(v, 1);
  }
}

TEST(MinibatchPolicy, ProportionalEqualizesSamplingRate) {
  // The paper's point: s_k / |D_k| should be (approximately) equal, so every
  // example is sampled at the same expected rate regardless of hospital size.
  const std::vector<std::int64_t> shards = {800, 400, 200, 100};
  const auto s = core::minibatch_sizes(core::MinibatchPolicy::kProportional,
                                       150, shards);
  const double base = static_cast<double>(s[0]) / shards[0];
  for (std::size_t k = 1; k < shards.size(); ++k) {
    const double rate = static_cast<double>(s[k]) / shards[k];
    EXPECT_NEAR(rate / base, 1.0, 0.15) << "platform " << k;
  }
}

TEST(MinibatchPolicy, GuaranteesFloorOfOne) {
  const auto s = core::minibatch_sizes(core::MinibatchPolicy::kProportional,
                                       4, {1000000, 1, 1, 1});
  for (const auto v : s) EXPECT_GE(v, 1);
  EXPECT_EQ(std::accumulate(s.begin(), s.end(), std::int64_t{0}), 4);
}

TEST(MinibatchPolicy, Validation) {
  EXPECT_THROW(core::minibatch_sizes(core::MinibatchPolicy::kUniform, 1,
                                     {10, 10}),
               InvalidArgument);
  EXPECT_THROW(core::minibatch_sizes(core::MinibatchPolicy::kProportional, 4,
                                     {10, 0}),
               InvalidArgument);
}

TEST(SplitModel, SplitAtDividesLayersAndParams) {
  models::MlpConfig cfg;
  cfg.input_shape = Shape{1, 4, 4};
  cfg.hidden = {8, 6};
  cfg.num_classes = 3;
  auto model = models::make_mlp(cfg);
  const std::size_t total_layers = model.net.size();
  const std::int64_t total_params =
      nn::Sequential(std::move(model.net)).parameter_count();
  // Rebuild (the move above consumed it).
  auto model2 = models::make_mlp(cfg);
  auto parts = core::split_at(std::move(model2.net), model2.default_cut);
  EXPECT_EQ(parts.platform.size(), model2.default_cut);
  EXPECT_EQ(parts.platform.size() + parts.server.size(), total_layers);
  EXPECT_EQ(parts.platform.parameter_count() + parts.server.parameter_count(),
            total_params);
}

TEST(SplitModel, SplitComposesToSameFunction) {
  models::MlpConfig cfg;
  cfg.input_shape = Shape{1, 4, 4};
  cfg.hidden = {8};
  cfg.num_classes = 3;
  auto whole = models::make_mlp(cfg);
  auto split_src = models::make_mlp(cfg);  // identical weights (same seed)
  auto parts = core::split_at(std::move(split_src.net), split_src.default_cut);

  Rng xr(5);
  const Tensor x = Tensor::normal(Shape{4, 1, 4, 4}, xr);
  const Tensor direct = whole.net.forward(x, false);
  const Tensor composed =
      parts.server.forward(parts.platform.forward(x, false), false);
  EXPECT_EQ(ops::max_abs_diff(direct, composed), 0.0F);
}

TEST(SplitModel, InvalidCutRejected) {
  models::MlpConfig cfg;
  auto model = models::make_mlp(cfg);
  EXPECT_THROW(core::split_at(std::move(model.net), 0), InvalidArgument);
}

TEST(SplitModel, CopyParametersTransfersValues) {
  models::MlpConfig cfg;
  cfg.hidden = {4};
  cfg.seed = 1;
  auto a = models::make_mlp(cfg);
  cfg.seed = 2;
  auto b = models::make_mlp(cfg);
  EXPECT_GT(ops::max_abs_diff(a.net.parameters()[0]->value,
                              b.net.parameters()[0]->value),
            0.0F);
  core::copy_parameters(a.net, b.net);
  for (std::size_t i = 0; i < a.net.parameters().size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(a.net.parameters()[i]->value,
                                b.net.parameters()[i]->value),
              0.0F);
  }
}

TEST(Protocol, TensorEnvelopeRoundTrip) {
  Rng rng(1);
  const Tensor t = Tensor::normal(Shape{3, 4}, rng);
  const Envelope e =
      core::make_tensor_envelope(1, 2, core::MsgKind::kActivation, 9, t);
  EXPECT_EQ(e.kind, 1U);
  EXPECT_EQ(e.round, 9U);
  const Tensor back = core::decode_tensor_payload(e.payload);
  EXPECT_EQ(ops::max_abs_diff(back, t), 0.0F);
}

TEST(Protocol, TrailingBytesRejected) {
  Rng rng(1);
  const Tensor t = Tensor::normal(Shape{2}, rng);
  Envelope e = core::make_tensor_envelope(1, 2, core::MsgKind::kLogits, 0, t);
  e.payload.push_back(0);
  EXPECT_THROW(core::decode_tensor_payload(e.payload), SerializationError);
}

TEST(Protocol, KindNames) {
  EXPECT_STREQ(core::msg_kind_name(core::MsgKind::kActivation), "activation");
  EXPECT_STREQ(core::msg_kind_name(core::MsgKind::kCutGrad), "cut-grad");
}

class ProtocolStateMachine : public ::testing::Test {
 protected:
  ProtocolStateMachine()
      : dataset_(make_dataset()),
        server_id_(network_.add_node("server")),
        platform_id_(network_.add_node("platform")) {
    models::MlpConfig cfg;
    cfg.input_shape = Shape{3, 8, 8};
    cfg.hidden = {8};
    cfg.num_classes = 4;
    auto model = models::make_mlp(cfg);
    auto parts = core::split_at(std::move(model.net), model.default_cut);
    server_ = std::make_unique<core::CentralServer>(
        server_id_, std::move(parts.server), optim::SgdOptions{});
    std::vector<std::int64_t> shard = {0, 1, 2, 3};
    platform_ = std::make_unique<core::PlatformNode>(
        platform_id_, server_id_, std::move(parts.platform),
        data::DataLoader(dataset_, shard, 2, Rng(1)), optim::SgdOptions{});
  }

  static data::SyntheticCifar make_dataset() {
    data::SyntheticCifarOptions opt;
    opt.num_examples = 8;
    opt.num_classes = 4;
    opt.image_size = 8;
    return data::SyntheticCifar(opt);
  }

  data::SyntheticCifar dataset_;
  net::Network network_;
  NodeId server_id_;
  NodeId platform_id_;
  std::unique_ptr<core::CentralServer> server_;
  std::unique_ptr<core::PlatformNode> platform_;
};

TEST_F(ProtocolStateMachine, FullStepCompletesAndCounts) {
  platform_->send_activation(network_, 1);
  server_->handle(network_, network_.receive(server_id_));
  platform_->handle(network_, network_.receive(platform_id_));
  server_->handle(network_, network_.receive(server_id_));
  platform_->handle(network_, network_.receive(platform_id_));
  EXPECT_EQ(platform_->steps_completed(), 1);
  EXPECT_EQ(server_->steps_completed(), 1);
  EXPECT_GT(platform_->last_loss(), 0.0F);
  // Exactly 4 messages crossed the wire.
  EXPECT_EQ(network_.stats().total_messages(), 4U);
}

TEST_F(ProtocolStateMachine, DoubleActivationWithoutBackwardThrows) {
  platform_->send_activation(network_, 1);
  server_->handle(network_, network_.receive(server_id_));
  // A second activation before the grad round-trip must be rejected.
  Envelope rogue = core::make_tensor_envelope(
      platform_id_, server_id_, core::MsgKind::kActivation, 2,
      Tensor(Shape{1, 192}));
  EXPECT_THROW(server_->handle(network_, rogue), ProtocolError);
}

TEST_F(ProtocolStateMachine, PlatformRejectsWrongRound) {
  platform_->send_activation(network_, 1);
  Envelope wrong = core::make_tensor_envelope(
      server_id_, platform_id_, core::MsgKind::kLogits, 7,
      Tensor(Shape{2, 4}));
  EXPECT_THROW(platform_->handle(network_, wrong), ProtocolError);
}

TEST_F(ProtocolStateMachine, PlatformRejectsOutOfOrderKind) {
  platform_->send_activation(network_, 1);
  Envelope cut_grad_too_early = core::make_tensor_envelope(
      server_id_, platform_id_, core::MsgKind::kCutGrad, 1,
      Tensor(Shape{2, 8}));
  EXPECT_THROW(platform_->handle(network_, cut_grad_too_early),
               ProtocolError);
}

TEST_F(ProtocolStateMachine, ServerRejectsGradFromWrongPlatform) {
  platform_->send_activation(network_, 1);
  server_->handle(network_, network_.receive(server_id_));
  Envelope forged = core::make_tensor_envelope(
      NodeId{7}, server_id_, core::MsgKind::kLogitGrad, 1, Tensor(Shape{2, 4}));
  // Node 7 does not exist in the network, but the server checks identity
  // before any network interaction.
  EXPECT_THROW(server_->handle(network_, forged), ProtocolError);
}

TEST_F(ProtocolStateMachine, SendWhileMidStepThrows) {
  platform_->send_activation(network_, 1);
  EXPECT_THROW(platform_->send_activation(network_, 2), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
