// Property tests for minibatch_sizes: under every policy and any legal
// shard profile, the per-platform sizes sum exactly to total_batch with a
// floor of one example — the invariant the protocol's byte accounting and
// the paper's imbalance mitigation (§II) both lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/core/minibatch_policy.hpp"

namespace splitmed {
namespace {

using core::MinibatchPolicy;
using core::minibatch_sizes;

std::int64_t sum(const std::vector<std::int64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::int64_t{0});
}

TEST(MinibatchPolicy, ProportionalTracksShardSizes) {
  const auto sizes =
      minibatch_sizes(MinibatchPolicy::kProportional, 32, {10, 30, 60});
  EXPECT_EQ(sum(sizes), 32);
  // 10/100, 30/100, 60/100 of 32 — rounded, monotone in the shard size.
  EXPECT_LE(sizes[0], sizes[1]);
  EXPECT_LE(sizes[1], sizes[2]);
  EXPECT_GE(*std::min_element(sizes.begin(), sizes.end()), 1);
}

TEST(MinibatchPolicy, FloorOfOneSurvivesExtremeImbalance) {
  // A near-empty shard still gets one example (it must be able to send a
  // non-empty activation), and the sum still lands exactly on total_batch.
  const auto sizes =
      minibatch_sizes(MinibatchPolicy::kProportional, 8, {1, 1, 10000});
  EXPECT_EQ(sum(sizes), 8);
  EXPECT_GE(sizes[0], 1);
  EXPECT_GE(sizes[1], 1);
  EXPECT_EQ(sizes[2], 6);
}

TEST(MinibatchPolicy, EqualShardsAreBalancedUnderBothPolicies) {
  for (const auto policy :
       {MinibatchPolicy::kUniform, MinibatchPolicy::kProportional}) {
    // total_batch not divisible by K: sizes may differ by at most one.
    const auto sizes = minibatch_sizes(policy, 22, {50, 50, 50, 50});
    EXPECT_EQ(sum(sizes), 22);
    const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*hi - *lo, 1);
  }
}

TEST(MinibatchPolicy, DeterministicAcrossRepeatedCalls) {
  const std::vector<std::int64_t> shards = {7, 19, 3, 42, 11};
  for (const auto policy :
       {MinibatchPolicy::kUniform, MinibatchPolicy::kProportional}) {
    const auto first = minibatch_sizes(policy, 24, shards);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(minibatch_sizes(policy, 24, shards), first);
    }
  }
}

TEST(MinibatchPolicy, PermutedEqualShardsGetPermutedEqualSizes) {
  // With all shards equal the assignment must not depend on platform order
  // beyond the deterministic remainder tie-break: the multiset of sizes is
  // identical however the (equal) shards are listed.
  const auto a = minibatch_sizes(MinibatchPolicy::kProportional, 10, {8, 8, 8});
  auto b = minibatch_sizes(MinibatchPolicy::kProportional, 10, {8, 8, 8});
  EXPECT_EQ(a, b);
  auto sorted_a = a;
  std::sort(sorted_a.begin(), sorted_a.end());
  EXPECT_EQ(sum(a), 10);
  const auto [lo, hi] = std::minmax_element(a.begin(), a.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(MinibatchPolicy, RandomProfilesAlwaysSumWithFloor) {
  // Property sweep: 200 random (K, total_batch, shards) profiles under both
  // policies — the sum and floor invariants must hold for every one.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t k = rng.uniform_int(1, 12);
    const std::int64_t total =
        k + rng.uniform_int(0, 96);
    std::vector<std::int64_t> shards;
    for (std::int64_t i = 0; i < k; ++i) {
      shards.push_back(rng.uniform_int(1, 500));
    }
    for (const auto policy :
         {MinibatchPolicy::kUniform, MinibatchPolicy::kProportional}) {
      const auto sizes = minibatch_sizes(policy, total, shards);
      ASSERT_EQ(sizes.size(), shards.size());
      EXPECT_EQ(sum(sizes), total);
      EXPECT_GE(*std::min_element(sizes.begin(), sizes.end()), 1);
    }
  }
}

TEST(MinibatchPolicy, RejectsIllegalProfiles) {
  EXPECT_THROW(minibatch_sizes(MinibatchPolicy::kProportional, 5, {}),
               InvalidArgument);
  EXPECT_THROW(minibatch_sizes(MinibatchPolicy::kProportional, 2, {4, 4, 4}),
               InvalidArgument);
  EXPECT_THROW(minibatch_sizes(MinibatchPolicy::kProportional, 8, {4, 0, 4}),
               InvalidArgument);
}

}  // namespace
}  // namespace splitmed
