// Property tests for the blocked GEMM kernels against a naive reference,
// parameterized across a sweep of (m, n, k) shapes including degenerate ones.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/gemm.hpp"

namespace splitmed {
namespace {

using Dims = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

void naive_nn(std::int64_t m, std::int64_t n, std::int64_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class GemmSweep : public ::testing::TestWithParam<Dims> {};

TEST_P(GemmSweep, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  std::vector<float> c(static_cast<std::size_t>(m * n), -1.0F);
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  gemm_nn(m, n, k, a, b, c);
  naive_nn(m, n, k, a, b, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (1.0F + std::abs(ref[i])));
  }
}

TEST_P(GemmSweep, TnMatchesTransposedNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + n * 31 + k * 977));
  // A stored [k, m].
  std::vector<float> at(static_cast<std::size_t>(k * m));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : at) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  // Build row-major A [m, k] from At for the naive reference.
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      a[i * k + kk] = at[kk * m + i];
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m * n));
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  gemm_tn(m, n, k, at, b, c);
  naive_nn(m, n, k, a, b, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (1.0F + std::abs(ref[i])));
  }
}

TEST_P(GemmSweep, NtMatchesTransposedNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 7 + k * 11));
  std::vector<float> a(static_cast<std::size_t>(m * k));
  // B stored [n, k].
  std::vector<float> bt(static_cast<std::size_t>(n * k));
  for (auto& v : a) v = rng.normal();
  for (auto& v : bt) v = rng.normal();
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t j = 0; j < n; ++j) {
      b[kk * n + j] = bt[j * k + kk];
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m * n));
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  gemm_nt(m, n, k, a, bt, c);
  naive_nn(m, n, k, a, b, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (1.0F + std::abs(ref[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(Dims{1, 1, 1}, Dims{1, 7, 3}, Dims{5, 1, 2},
                      Dims{4, 4, 4}, Dims{3, 5, 7}, Dims{17, 19, 23},
                      Dims{32, 32, 32}, Dims{33, 65, 70}, Dims{64, 2, 128},
                      Dims{2, 64, 128}));

TEST(Gemm, ZeroKProducesZeroMatrix) {
  std::vector<float> a, b;
  std::vector<float> c(6, 5.0F);
  gemm_nn(2, 3, 0, a, b, c);
  for (const float v : c) EXPECT_EQ(v, 0.0F);
}

TEST(Gemm, OverflowingDimensionProductThrows) {
  // m * k overflows int64; before the overflow check this wrapped to a small
  // (even negative) product and the size precondition silently passed.
  const std::int64_t big = std::int64_t{1} << 32;
  std::vector<float> a(1), b(1), c(1);
  EXPECT_THROW(gemm_nn(big, big, big, a, b, c), InvalidArgument);
  EXPECT_THROW(gemm_tn(big, 1, big, a, b, c), InvalidArgument);
  EXPECT_THROW(gemm_nt(big, big, 1, a, b, c), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
