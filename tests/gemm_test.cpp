// Property tests for the blocked GEMM kernels against a naive reference,
// parameterized across a sweep of (m, n, k) shapes including degenerate ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/tensor/gemm.hpp"

namespace splitmed {
namespace {

using Dims = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

void naive_nn(std::int64_t m, std::int64_t n, std::int64_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class GemmSweep : public ::testing::TestWithParam<Dims> {};

TEST_P(GemmSweep, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  std::vector<float> c(static_cast<std::size_t>(m * n), -1.0F);
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  gemm_nn(m, n, k, a, b, c);
  naive_nn(m, n, k, a, b, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (1.0F + std::abs(ref[i])));
  }
}

TEST_P(GemmSweep, TnMatchesTransposedNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + n * 31 + k * 977));
  // A stored [k, m].
  std::vector<float> at(static_cast<std::size_t>(k * m));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : at) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  // Build row-major A [m, k] from At for the naive reference.
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      a[i * k + kk] = at[kk * m + i];
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m * n));
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  gemm_tn(m, n, k, at, b, c);
  naive_nn(m, n, k, a, b, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (1.0F + std::abs(ref[i])));
  }
}

TEST_P(GemmSweep, NtMatchesTransposedNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 7 + k * 11));
  std::vector<float> a(static_cast<std::size_t>(m * k));
  // B stored [n, k].
  std::vector<float> bt(static_cast<std::size_t>(n * k));
  for (auto& v : a) v = rng.normal();
  for (auto& v : bt) v = rng.normal();
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t j = 0; j < n; ++j) {
      b[kk * n + j] = bt[j * k + kk];
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m * n));
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  gemm_nt(m, n, k, a, bt, c);
  naive_nn(m, n, k, a, b, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3F * (1.0F + std::abs(ref[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(Dims{1, 1, 1}, Dims{1, 7, 3}, Dims{5, 1, 2},
                      Dims{4, 4, 4}, Dims{3, 5, 7}, Dims{17, 19, 23},
                      Dims{32, 32, 32}, Dims{33, 65, 70}, Dims{64, 2, 128},
                      Dims{2, 64, 128}));

// Restores the environment-default pool size on scope exit so thread-count
// sweeps don't leak into later tests.
class PoolGuard {
 public:
  PoolGuard() = default;
  ~PoolGuard() { set_global_threads(0); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;
};

bool bitwise_equal(const std::vector<float>& x, const std::vector<float>& y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0);
}

// The determinism contract (docs/PERFORMANCE.md): the packed, parallel,
// possibly-SIMD kernels must reproduce the serial naive reference BITWISE —
// same strict k-ascending write-first fold per element — for every shape
// (padded tails, partial blocks) and every thread count (row partitioning
// never regroups a fold). EXPECT_NEAR would hide regressions here; only
// memcmp proves the fold was preserved.
TEST(GemmBitwise, PackedMatchesReferenceAcrossShapesAndThreads) {
  const std::int64_t dims[] = {1, 3, 7, 17, 33, 64, 130};
  PoolGuard guard;
  for (const int threads : {1, 2, 8}) {
    set_global_threads(threads);
    for (const std::int64_t m : dims) {
      for (const std::int64_t n : dims) {
        for (const std::int64_t k : dims) {
          Rng rng(static_cast<std::uint64_t>((m * 131 + n) * 131 + k));
          std::vector<float> amk(static_cast<std::size_t>(m * k));
          std::vector<float> akm(static_cast<std::size_t>(k * m));
          std::vector<float> bkn(static_cast<std::size_t>(k * n));
          std::vector<float> bnk(static_cast<std::size_t>(n * k));
          for (auto& v : amk) v = rng.normal();
          for (auto& v : akm) v = rng.normal();
          for (auto& v : bkn) v = rng.normal();
          for (auto& v : bnk) v = rng.normal();
          std::vector<float> c(static_cast<std::size_t>(m * n), -2.0F);
          std::vector<float> ref(static_cast<std::size_t>(m * n), -3.0F);

          gemm_nn(m, n, k, amk, bkn, c);
          gemm_nn_ref(m, n, k, amk, bkn, ref);
          EXPECT_TRUE(bitwise_equal(c, ref))
              << "nn " << m << 'x' << n << 'x' << k << " threads=" << threads
              << " isa=" << gemm_kernel_isa();

          gemm_tn(m, n, k, akm, bkn, c);
          gemm_tn_ref(m, n, k, akm, bkn, ref);
          EXPECT_TRUE(bitwise_equal(c, ref))
              << "tn " << m << 'x' << n << 'x' << k << " threads=" << threads
              << " isa=" << gemm_kernel_isa();

          gemm_nt(m, n, k, amk, bnk, c);
          gemm_nt_ref(m, n, k, amk, bnk, ref);
          EXPECT_TRUE(bitwise_equal(c, ref))
              << "nt " << m << 'x' << n << 'x' << k << " threads=" << threads
              << " isa=" << gemm_kernel_isa();
        }
      }
    }
  }
}

// Degenerate dimensions: packed and reference paths must agree that
// m==0 / n==0 write nothing and k==0 writes zeros.
TEST(GemmBitwise, ZeroDimsMatchReference) {
  const std::int64_t shapes[][3] = {
      {0, 5, 4}, {5, 0, 4}, {5, 4, 0}, {0, 0, 0}, {1, 1, 0}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    std::vector<float> a(static_cast<std::size_t>(m * k), 1.0F);
    std::vector<float> b(static_cast<std::size_t>(k * n), 1.0F);
    std::vector<float> c(static_cast<std::size_t>(m * n), -1.0F);
    std::vector<float> ref(static_cast<std::size_t>(m * n), -1.0F);
    gemm_nn(m, n, k, a, b, c);
    gemm_nn_ref(m, n, k, a, b, ref);
    EXPECT_TRUE(bitwise_equal(c, ref)) << m << 'x' << n << 'x' << k;
  }
}

// Applies the epilogue sequence to an already-computed GEMM result with the
// exact scalar expressions the unfused layer code uses (bias add, then the
// left-associated eval-BN map, then ReLU). The fused kernels must reproduce
// this BITWISE — the epilogue runs per element on the finished fold, so
// fusion must never change a single rounding.
void apply_epilogue_ref(std::int64_t m, std::int64_t n, std::vector<float>& c,
                        const gemmk::Epilogue& ep) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t p = ep.per_row ? i : j;
      float x = c[static_cast<std::size_t>(i * n + j)];
      if (ep.bias != nullptr) x = x + ep.bias[p];
      if (ep.bn_gamma != nullptr) {
        x = ((ep.bn_gamma[p] * (x - ep.bn_mean[p])) * ep.bn_inv_std[p]) +
            ep.bn_beta[p];
      }
      if (ep.relu) x = x > 0.0F ? x : 0.0F;
      c[static_cast<std::size_t>(i * n + j)] = x;
    }
  }
}

// Fused-epilogue bitwise sweep: gemm_nn_ep / gemm_nt_ep against plain GEMM +
// the scalar reference epilogue, across shapes (full tiles, padded tails),
// thread counts, bias orientation, and every legal epilogue composition.
// Run under all three ISA variants via the gemm_test_base_isa / avx dispatch
// (same mechanism as the GemmBitwise sweep above).
TEST(GemmEpilogue, FusedWriteBackMatchesUnfusedBitwise) {
  const std::int64_t dims[] = {1, 3, 7, 17, 33, 64, 130};
  PoolGuard guard;
  for (const int threads : {1, 2, 8}) {
    set_global_threads(threads);
    for (const std::int64_t m : dims) {
      for (const std::int64_t n : dims) {
        for (const std::int64_t k : dims) {
          Rng rng(static_cast<std::uint64_t>((m * 151 + n) * 151 + k));
          std::vector<float> a(static_cast<std::size_t>(m * k));
          std::vector<float> bkn(static_cast<std::size_t>(k * n));
          std::vector<float> bnk(static_cast<std::size_t>(n * k));
          for (auto& v : a) v = rng.normal();
          for (auto& v : bkn) v = rng.normal();
          for (auto& v : bnk) v = rng.normal();
          const std::size_t pmax = static_cast<std::size_t>(std::max(m, n));
          std::vector<float> bias(pmax), g(pmax), mean(pmax), inv(pmax),
              beta(pmax);
          for (std::size_t p = 0; p < pmax; ++p) {
            bias[p] = rng.normal();
            g[p] = rng.normal();
            mean[p] = rng.normal();
            inv[p] = 1.0F + 0.25F * rng.normal();  // plausible 1/sqrt scale
            beta[p] = rng.normal();
          }
          gemmk::Epilogue eps[3];
          // conv-style: per-row bias + relu
          eps[0].bias = bias.data();
          eps[0].relu = true;
          eps[0].per_row = true;
          // conv+bn+relu: the full inference stack
          eps[1] = eps[0];
          eps[1].bn_gamma = g.data();
          eps[1].bn_mean = mean.data();
          eps[1].bn_inv_std = inv.data();
          eps[1].bn_beta = beta.data();
          // linear-style: per-COLUMN bias + relu
          eps[2].bias = bias.data();
          eps[2].relu = true;
          eps[2].per_row = false;
          std::vector<float> c(static_cast<std::size_t>(m * n), -2.0F);
          std::vector<float> ref(static_cast<std::size_t>(m * n), -3.0F);
          for (int e = 0; e < 3; ++e) {
            gemm_nn_ep(m, n, k, a, bkn, c, eps[e]);
            gemm_nn(m, n, k, a, bkn, ref);
            apply_epilogue_ref(m, n, ref, eps[e]);
            EXPECT_TRUE(bitwise_equal(c, ref))
                << "nn_ep[" << e << "] " << m << 'x' << n << 'x' << k
                << " threads=" << threads << " isa=" << gemm_kernel_isa();

            gemm_nt_ep(m, n, k, a, bnk, c, eps[e]);
            gemm_nt(m, n, k, a, bnk, ref);
            apply_epilogue_ref(m, n, ref, eps[e]);
            EXPECT_TRUE(bitwise_equal(c, ref))
                << "nt_ep[" << e << "] " << m << 'x' << n << 'x' << k
                << " threads=" << threads << " isa=" << gemm_kernel_isa();
          }
        }
      }
    }
  }
}

TEST(GemmEpilogue, ZeroKAppliesEpilogueToZeroMatrix) {
  // k == 0: the unfused sequence is "zero the output, then run the tail" —
  // the fused entry point must match (bias/BN/ReLU of 0, not untouched 0).
  const std::vector<float> bias = {1.5F, -2.0F, 0.25F};
  gemmk::Epilogue ep;
  ep.bias = bias.data();
  ep.relu = true;
  ep.per_row = false;
  std::vector<float> c(2 * 3, -7.0F);
  gemm_nn_ep(2, 3, 0, {}, {}, c, ep);
  std::vector<float> ref(2 * 3, 0.0F);
  apply_epilogue_ref(2, 3, ref, ep);
  EXPECT_TRUE(bitwise_equal(c, ref));
  for (std::size_t j = 0; j < 3; ++j) {
    const float expect = bias[j] > 0.0F ? bias[j] : 0.0F;
    EXPECT_EQ(c[j], expect);
    EXPECT_EQ(c[3 + j], expect);
  }
}

TEST(GemmEpilogue, NegativeZeroAndNanFollowScalarRelu) {
  // The vector select lane must match the scalar `x > 0 ? x : 0` exactly in
  // the edge cases: -0.0 is not > 0 (→ +0.0 out), NaN is not > 0 (→ 0 out).
  // Build a k=1 product that lands -0.0 and NaN in C, with a wide n so the
  // vectorized full-tile path (not just the scalar edge) sees them.
  const std::int64_t n = 64;
  std::vector<float> a = {1.0F};
  std::vector<float> b(static_cast<std::size_t>(n), 1.0F);
  b[3] = -0.0F;
  b[7] = std::numeric_limits<float>::quiet_NaN();
  b[11] = -5.0F;
  std::vector<float> zero_bias(static_cast<std::size_t>(n), 0.0F);
  gemmk::Epilogue ep;
  ep.bias = zero_bias.data();
  ep.relu = true;
  ep.per_row = false;
  std::vector<float> c(static_cast<std::size_t>(n), -1.0F);
  gemm_nn_ep(1, n, 1, a, b, c, ep);
  std::vector<float> ref(static_cast<std::size_t>(n), -1.0F);
  gemm_nn(1, n, 1, a, b, ref);
  apply_epilogue_ref(1, n, ref, ep);
  EXPECT_TRUE(bitwise_equal(c, ref)) << "isa=" << gemm_kernel_isa();
  EXPECT_EQ(c[3], 0.0F);
  EXPECT_FALSE(std::signbit(c[3]));  // -0.0 + 0 bias → +0.0, relu keeps +0.0
  EXPECT_EQ(c[7], 0.0F);             // NaN is not > 0 → clamped to 0
  EXPECT_EQ(c[11], 0.0F);
  EXPECT_EQ(c[0], 1.0F);
}

TEST(Gemm, KernelIsaIsReported) {
  const std::string isa = gemm_kernel_isa();
  EXPECT_TRUE(isa == "base" || isa == "avx2" || isa == "avx512f" ||
              isa == "scalar")
      << isa;
}

TEST(Gemm, ZeroKProducesZeroMatrix) {
  std::vector<float> a, b;
  std::vector<float> c(6, 5.0F);
  gemm_nn(2, 3, 0, a, b, c);
  for (const float v : c) EXPECT_EQ(v, 0.0F);
}

TEST(Gemm, OverflowingDimensionProductThrows) {
  // m * k overflows int64; before the overflow check this wrapped to a small
  // (even negative) product and the size precondition silently passed.
  const std::int64_t big = std::int64_t{1} << 32;
  std::vector<float> a(1), b(1), c(1);
  EXPECT_THROW(gemm_nn(big, big, big, a, b, c), InvalidArgument);
  EXPECT_THROW(gemm_tn(big, 1, big, a, b, c), InvalidArgument);
  EXPECT_THROW(gemm_nt(big, big, 1, a, b, c), InvalidArgument);
}

}  // namespace
}  // namespace splitmed
