// Tests for the thread-local workspace arena (src/tensor/workspace.hpp):
// scoped checkout/release, high-water growth and coalescing, 64-byte
// alignment, per-thread isolation, and the headline property the arena
// exists for — steady-state Conv2d training steps perform zero heap
// allocations for kernel scratch.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/conv2d.hpp"
#include "src/tensor/tensor.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(Workspace, SpansAreAlignedAndDisjoint) {
  ws::Workspace::local().trim();
  ws::WorkspaceScope scope;
  std::span<float> a = scope.floats(7);    // odd size: next span must still
  std::span<float> b = scope.floats(100);  // come back 64-byte aligned
  std::span<float> c = scope.floats(1);
  ASSERT_EQ(a.size(), 7U);
  ASSERT_EQ(b.size(), 100U);
  ASSERT_EQ(c.size(), 1U);
  EXPECT_TRUE(aligned64(a.data()));
  EXPECT_TRUE(aligned64(b.data()));
  EXPECT_TRUE(aligned64(c.data()));
  // Later checkouts never overlap or move earlier ones.
  EXPECT_GE(b.data(), a.data() + 16);  // 7 floats pad to one 64B line
  EXPECT_GE(c.data(), b.data() + 100);
  for (auto& v : a) v = 1.0F;
  for (auto& v : b) v = 2.0F;
  for (auto& v : c) v = 3.0F;
  EXPECT_EQ(a[6], 1.0F);
  EXPECT_EQ(b[0], 2.0F);
}

TEST(Workspace, ZeroSizeCheckoutIsEmpty) {
  ws::WorkspaceScope scope;
  EXPECT_TRUE(scope.floats(0).empty());
}

TEST(Workspace, ScopeReleaseEnablesReuseWithoutNewBlocks) {
  ws::Workspace& arena = ws::Workspace::local();
  arena.trim();
  float* first = nullptr;
  {
    ws::WorkspaceScope scope;
    first = scope.floats(1024).data();
  }
  const std::uint64_t allocs_after_warmup = arena.stats().block_allocs;
  // Same-size checkouts after release must reuse the same storage: same
  // pointer, no new heap blocks, across many "steps".
  for (int step = 0; step < 32; ++step) {
    ws::WorkspaceScope scope;
    std::span<float> again = scope.floats(1024);
    EXPECT_EQ(again.data(), first);
  }
  EXPECT_EQ(arena.stats().block_allocs, allocs_after_warmup);
  EXPECT_EQ(arena.stats().bytes_in_use, 0U);
}

TEST(Workspace, GrowthCoalescesToOneHighWaterBlock) {
  ws::Workspace& arena = ws::Workspace::local();
  arena.trim();
  {
    ws::WorkspaceScope scope;
    scope.floats(100);
  }
  // A larger demand while the small block is live forces a second block...
  {
    ws::WorkspaceScope scope;
    scope.floats(100);
    scope.floats(50000);
    EXPECT_GE(arena.stats().blocks, 2U);
  }
  // ...and the outermost release coalesces back to a single block big
  // enough for the whole high-water footprint.
  const ws::WorkspaceStats s = arena.stats();
  EXPECT_EQ(s.blocks, 1U);
  EXPECT_EQ(s.bytes_in_use, 0U);
  EXPECT_GE(s.bytes_reserved, s.high_water);
  {
    ws::WorkspaceScope scope;
    scope.floats(100);
    scope.floats(50000);
    EXPECT_EQ(arena.stats().blocks, 1U);  // refit needs no new block
  }
}

TEST(Workspace, NestedScopesReleaseLifo) {
  ws::Workspace& arena = ws::Workspace::local();
  arena.trim();
  ws::WorkspaceScope outer;
  std::span<float> kept = outer.floats(64);
  kept[0] = 42.0F;
  float* inner_ptr = nullptr;
  {
    ws::WorkspaceScope inner;
    inner_ptr = inner.floats(64).data();
    EXPECT_NE(inner_ptr, kept.data());
  }
  {
    ws::WorkspaceScope inner;
    // The inner slot was released and is handed out again; the outer span
    // is untouched.
    EXPECT_EQ(inner.floats(64).data(), inner_ptr);
  }
  EXPECT_EQ(kept[0], 42.0F);
}

TEST(Workspace, ArenasAreThreadLocal) {
  ws::WorkspaceScope scope;
  std::span<float> mine = scope.floats(256);
  float* theirs = nullptr;
  std::uint64_t their_checkouts = 0;
  std::thread t([&] {
    ws::WorkspaceScope other;
    theirs = other.floats(256).data();
    their_checkouts = ws::Workspace::local().stats().checkouts;
  });
  t.join();
  EXPECT_NE(theirs, mine.data());
  EXPECT_GE(their_checkouts, 1U);  // the worker saw its own arena's counters
}

TEST(Workspace, GlobalCountersTrackReservation) {
  ws::Workspace::local().trim();
  const std::size_t reserved_before = ws::global_bytes_reserved();
  const std::size_t in_use_before = ws::global_bytes_in_use();
  {
    ws::WorkspaceScope scope;
    scope.floats(4096);
    EXPECT_GE(ws::global_bytes_in_use(), in_use_before + 4096 * sizeof(float));
    EXPECT_GE(ws::global_bytes_reserved(),
              reserved_before + 4096 * sizeof(float));
  }
  EXPECT_EQ(ws::global_bytes_in_use(), in_use_before);
  // Reservation persists after release — that's the point of the arena.
  EXPECT_GE(ws::global_bytes_reserved(), reserved_before);
}

// The acceptance property for the whole arena subsystem: after one warm-up
// step, Conv2d forward+backward training steps allocate NO new arena blocks
// on any thread — the global lifetime-allocation counter stands still.
TEST(Workspace, Conv2dSteadyStateMakesNoArenaAllocations) {
  set_global_threads(1);  // keep the measurement on one arena
  Rng rng(7);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const Tensor x = Tensor::normal(Shape{4, 3, 12, 12}, rng);
  // Warm-up grows every arena involved to its high-water mark.
  Tensor y = conv.forward(x, true);
  const Tensor g = Tensor::normal(y.shape(), rng);
  conv.backward(g);
  const std::uint64_t allocs = ws::global_block_allocs();
  for (int step = 0; step < 8; ++step) {
    conv.zero_grad();
    Tensor out = conv.forward(x, true);
    conv.backward(g);
  }
  EXPECT_EQ(ws::global_block_allocs(), allocs)
      << "steady-state Conv2d steps must not grow any workspace arena";
  set_global_threads(0);
}

}  // namespace
}  // namespace splitmed
