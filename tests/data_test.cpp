// Tests for data/: synthetic datasets, partitioning, loaders.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>

#include "src/common/error.hpp"
#include "src/data/dataloader.hpp"
#include "src/data/transforms.hpp"
#include "src/data/partition.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/data/synthetic_medical.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

data::SyntheticCifar small_cifar(std::int64_t n = 64, std::int64_t classes = 10,
                                 std::uint64_t seed = 42) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = classes;
  opt.image_size = 16;
  opt.seed = seed;
  return data::SyntheticCifar(opt);
}

TEST(SyntheticCifar, ShapesAndLabels) {
  const auto ds = small_cifar();
  EXPECT_EQ(ds.size(), 64);
  EXPECT_EQ(ds.num_classes(), 10);
  EXPECT_EQ(ds.image_shape(), Shape({3, 16, 16}));
  EXPECT_EQ(ds.image(0).shape(), Shape({3, 16, 16}));
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.label(i), 0);
    EXPECT_LT(ds.label(i), 10);
  }
}

TEST(SyntheticCifar, DeterministicPerIndexAndSeed) {
  const auto a = small_cifar();
  const auto b = small_cifar();
  EXPECT_EQ(ops::max_abs_diff(a.image(7), b.image(7)), 0.0F);
  const auto c = small_cifar(64, 10, /*seed=*/1);
  EXPECT_GT(ops::max_abs_diff(a.image(7), c.image(7)), 0.0F);
}

TEST(SyntheticCifar, DistinctExamplesWithinClass) {
  const auto ds = small_cifar();
  // Examples 0 and 10 share a class (label = i % 10) but must differ.
  EXPECT_EQ(ds.label(0), ds.label(10));
  EXPECT_GT(ops::max_abs_diff(ds.image(0), ds.image(10)), 0.05F);
}

TEST(SyntheticCifar, ClassSignalExceedsNoise) {
  // Mean within-class distance should be smaller than between-class distance
  // (otherwise the task would be unlearnable).
  const auto ds = small_cifar(40, 2);
  double within = 0.0, between = 0.0;
  int nw = 0, nb = 0;
  for (std::int64_t i = 0; i < 10; ++i) {
    for (std::int64_t j = i + 1; j < 10; ++j) {
      const float d = ops::mse(ds.image(i), ds.image(j));
      if (ds.label(i) == ds.label(j)) {
        within += d;
        ++nw;
      } else {
        between += d;
        ++nb;
      }
    }
  }
  EXPECT_LT(within / nw, between / nb);
}

TEST(SyntheticCifar, IndexOutOfRangeThrows) {
  const auto ds = small_cifar(8);
  EXPECT_THROW(ds.image(8), InvalidArgument);
  EXPECT_THROW(ds.label(-1), InvalidArgument);
}

TEST(SyntheticMedical, ShapesAndGrades) {
  data::SyntheticMedicalOptions opt;
  opt.num_examples = 32;
  opt.num_grades = 4;
  opt.image_size = 24;
  const data::SyntheticMedical ds(opt);
  EXPECT_EQ(ds.image_shape(), Shape({1, 24, 24}));
  EXPECT_EQ(ds.num_classes(), 4);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ds.label(i), i % 4);
  }
}

TEST(SyntheticMedical, HigherGradeBrighterLesion) {
  data::SyntheticMedicalOptions opt;
  opt.num_examples = 400;
  opt.num_grades = 4;
  opt.noise_stddev = 0.0F;
  const data::SyntheticMedical ds(opt);
  // Max pixel intensity should grow with lesion grade on average.
  double mean_max[4] = {};
  int counts[4] = {};
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    mean_max[ds.label(i)] += ops::max(ds.image(i));
    ++counts[ds.label(i)];
  }
  for (int g = 0; g < 4; ++g) mean_max[g] /= counts[g];
  EXPECT_LT(mean_max[0], mean_max[2]);
  EXPECT_LT(mean_max[1], mean_max[3]);
}

TEST(Dataset, BatchGather) {
  const auto ds = small_cifar();
  const std::vector<std::int64_t> idx = {3, 0, 5};
  const Tensor batch = ds.batch_images(idx);
  EXPECT_EQ(batch.shape(), Shape({3, 3, 16, 16}));
  EXPECT_EQ(ops::max_abs_diff(batch.slice_rows(1, 2).reshape(ds.image_shape()),
                              ds.image(0)),
            0.0F);
  const auto labels = ds.batch_labels(idx);
  EXPECT_EQ(labels, (std::vector<std::int64_t>{3, 0, 5}));
}

TEST(Partition, IidCoversAllIndicesDisjointly) {
  Rng rng(1);
  const auto p = data::partition_iid(100, 4, rng);
  ASSERT_EQ(p.size(), 4U);
  std::set<std::int64_t> seen;
  for (const auto& shard : p) {
    EXPECT_EQ(shard.size(), 25U);
    for (const auto i : shard) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
  }
  EXPECT_EQ(seen.size(), 100U);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Partition, WeightedSizesProportional) {
  Rng rng(2);
  const auto p = data::partition_weighted(100, {3.0, 1.0}, rng);
  ASSERT_EQ(p.size(), 2U);
  EXPECT_EQ(p[0].size(), 75U);
  EXPECT_EQ(p[1].size(), 25U);
  EXPECT_EQ(data::partition_total(p), 100);
}

TEST(Partition, WeightedFloorsAtOne) {
  Rng rng(3);
  const auto p = data::partition_weighted(10, {1000.0, 1.0, 1.0}, rng);
  for (const auto& shard : p) EXPECT_GE(shard.size(), 1U);
  EXPECT_EQ(data::partition_total(p), 10);
}

TEST(Partition, ZipfMonotoneDecreasing) {
  Rng rng(4);
  const auto p = data::partition_zipf(1000, 5, 1.2, rng);
  for (std::size_t k = 1; k < p.size(); ++k) {
    EXPECT_LE(p[k].size(), p[k - 1].size());
  }
  EXPECT_EQ(data::partition_total(p), 1000);
}

TEST(Partition, ZipfAlphaZeroIsBalanced) {
  Rng rng(5);
  const auto p = data::partition_zipf(100, 4, 0.0, rng);
  for (const auto& shard : p) EXPECT_EQ(shard.size(), 25U);
}

TEST(Partition, LabelSkewConcentratesClasses) {
  const auto ds = small_cifar(200, 10);
  Rng rng(6);
  const auto p = data::partition_label_skew(ds, 5, 2, rng);
  EXPECT_EQ(data::partition_total(p), 200);
  // With 2 shards per platform over 10 sorted shards, each platform should
  // see few distinct labels (<= 4 given shard boundaries).
  for (const auto& shard : p) {
    std::set<std::int64_t> labels;
    for (const auto i : shard) labels.insert(ds.label(i));
    EXPECT_LE(labels.size(), 4U);
  }
}

TEST(Partition, Validation) {
  Rng rng(7);
  EXPECT_THROW(data::partition_iid(10, 0, rng), InvalidArgument);
  EXPECT_THROW(data::partition_weighted(1, {1.0, 1.0}, rng), InvalidArgument);
  EXPECT_THROW(data::partition_weighted(10, {1.0, -1.0}, rng),
               InvalidArgument);
}

TEST(DataLoader, EpochCoversShardOnce) {
  const auto ds = small_cifar(32);
  std::vector<std::int64_t> shard = {1, 3, 5, 7, 9, 11, 13, 15};
  data::DataLoader loader(ds, shard, 3, Rng(1));
  std::multiset<std::int64_t> seen;
  // One epoch = ceil(8/3) = 3 batches (2 full + 1 of size 2).
  for (int b = 0; b < 3; ++b) {
    const auto batch = loader.next_batch();
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      // Recover which dataset index produced this row via label uniqueness:
      // labels are index % 10, ambiguous; instead count rows.
      seen.insert(static_cast<std::int64_t>(batch.labels[i]));
    }
  }
  EXPECT_EQ(seen.size(), 8U);
}

TEST(DataLoader, BatchSizesAndEpochRollover) {
  const auto ds = small_cifar(32);
  std::vector<std::int64_t> shard = {0, 1, 2, 3, 4};
  data::DataLoader loader(ds, shard, 2, Rng(2));
  EXPECT_EQ(loader.batches_per_epoch(), 3);
  EXPECT_EQ(loader.next_batch().labels.size(), 2U);
  EXPECT_EQ(loader.next_batch().labels.size(), 2U);
  EXPECT_EQ(loader.next_batch().labels.size(), 1U);  // epoch tail
  EXPECT_EQ(loader.next_batch().labels.size(), 2U);  // next epoch restarts
}

TEST(DataLoader, SetBatchSizeTakesEffect) {
  const auto ds = small_cifar(32);
  std::vector<std::int64_t> shard(16);
  std::iota(shard.begin(), shard.end(), 0);
  data::DataLoader loader(ds, shard, 4, Rng(3));
  loader.set_batch_size(8);
  EXPECT_EQ(loader.next_batch().labels.size(), 8U);
}

TEST(DataLoader, ValidatesConstruction) {
  const auto ds = small_cifar(8);
  EXPECT_THROW(data::DataLoader(ds, {}, 2, Rng(1)), InvalidArgument);
  EXPECT_THROW(data::DataLoader(ds, {0, 99}, 2, Rng(1)), InvalidArgument);
  EXPECT_THROW(data::DataLoader(ds, {0, 1}, 0, Rng(1)), InvalidArgument);
}

TEST(DataLoader, FullShardIsSortedAndComplete) {
  const auto ds = small_cifar(16);
  data::DataLoader loader(ds, {5, 1, 3}, 2, Rng(4));
  const auto batch = loader.full_shard();
  EXPECT_EQ(batch.images.shape().dim(0), 3);
  EXPECT_EQ(batch.labels, (std::vector<std::int64_t>{1, 3, 5}));
}


TEST(DataLoader, TransformAppliedToBatchesNotFullShard) {
  const auto ds = small_cifar(16);
  std::vector<std::int64_t> shard = {0, 1, 2, 3};
  data::DataLoader loader(ds, shard, 4, Rng(5));
  const Tensor raw = loader.full_shard().images;
  // A normalize transform with huge scale makes transformed batches obvious.
  loader.set_transform(std::make_shared<data::Normalize>(
      std::vector<float>{0.0F, 0.0F, 0.0F},
      std::vector<float>{100.0F, 100.0F, 100.0F}));
  const Tensor transformed = loader.next_batch().images;
  EXPECT_LT(ops::max(transformed), 0.2F);
  // full_shard stays untransformed (evaluation path).
  EXPECT_EQ(ops::max_abs_diff(loader.full_shard().images, raw), 0.0F);
}

TEST(DataLoader, AugmentationKeepsShapesAndLabels) {
  const auto ds = small_cifar(32);
  std::vector<std::int64_t> shard = {0, 1, 2, 3, 4, 5, 6, 7};
  data::DataLoader loader(ds, shard, 4, Rng(6));
  std::vector<std::unique_ptr<data::Transform>> ts;
  ts.push_back(std::make_unique<data::RandomHorizontalFlip>(0.5F));
  ts.push_back(std::make_unique<data::RandomCrop>(2));
  loader.set_transform(std::make_shared<data::Compose>(std::move(ts)));
  const auto batch = loader.next_batch();
  EXPECT_EQ(batch.images.shape(), Shape({4, 3, 16, 16}));
  EXPECT_EQ(batch.labels.size(), 4U);
}

}  // namespace
}  // namespace splitmed
