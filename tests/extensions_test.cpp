// Tests for the protocol extensions: int8 wire compression, checkpointing,
// smashed-data noise defense, overlapped scheduling, and partial
// participation (fault injection).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "src/common/error.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"
#include "src/nn/checkpoint.hpp"
#include "src/privacy/distance_correlation.hpp"
#include "src/serial/quantize.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

// ---------------------------------------------------------------- quantize

class QuantizeRoundTrip : public ::testing::TestWithParam<Shape> {};

TEST_P(QuantizeRoundTrip, ErrorBoundedByHalfStep) {
  Rng rng(1);
  const Tensor t = Tensor::normal(GetParam(), rng, 0.0F, 2.0F);
  BufferWriter w;
  encode_tensor_i8(t, w);
  EXPECT_EQ(w.size(), encoded_tensor_i8_bytes(t.shape()));
  BufferReader r({w.bytes().data(), w.bytes().size()});
  const Tensor back = decode_tensor_i8(r);
  EXPECT_EQ(back.shape(), t.shape());
  float max_abs = 0.0F;
  for (const float v : t.data()) max_abs = std::max(max_abs, std::abs(v));
  const float half_step = 0.5F * quantization_step(max_abs) + 1e-6F;
  if (t.numel() > 0) {
    EXPECT_LE(ops::max_abs_diff(t, back), half_step);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QuantizeRoundTrip,
                         ::testing::Values(Shape{0}, Shape{1}, Shape{17},
                                           Shape{4, 5}, Shape{2, 3, 4, 5}));

TEST(Quantize, AllZerosRoundTripExactly) {
  const Tensor t(Shape{8});
  BufferWriter w;
  encode_tensor_i8(t, w);
  BufferReader r({w.bytes().data(), w.bytes().size()});
  const Tensor back = decode_tensor_i8(r);
  EXPECT_EQ(ops::max_abs_diff(t, back), 0.0F);
}

TEST(Quantize, RejectsNaNInput) {
  Tensor t(Shape{3});
  t.data()[1] = std::numeric_limits<float>::quiet_NaN();
  BufferWriter w;
  EXPECT_THROW(encode_tensor_i8(t, w), SerializationError);
}

TEST(Quantize, RejectsInfInput) {
  Tensor pos(Shape{3});
  pos.data()[2] = std::numeric_limits<float>::infinity();
  BufferWriter w;
  EXPECT_THROW(encode_tensor_i8(pos, w), SerializationError);

  Tensor neg(Shape{3});
  neg.data()[0] = -std::numeric_limits<float>::infinity();
  BufferWriter w2;
  EXPECT_THROW(encode_tensor_i8(neg, w2), SerializationError);
}

TEST(Quantize, TiesRoundHalfAwayFromZero) {
  // max_abs = 127 makes the scale exactly 1.0, so the quantized codes are
  // just the rounded inputs. Half-away-from-zero gives 2.5 -> 3 and
  // -2.5 -> -3; nearbyint under the default round-to-even mode would
  // produce 2 / -2 / 0 instead.
  Tensor t(Shape{5});
  const float vals[] = {127.0F, 2.5F, -2.5F, 0.5F, -0.5F};
  std::copy(std::begin(vals), std::end(vals), t.data().begin());
  BufferWriter w;
  encode_tensor_i8(t, w);
  BufferReader r({w.bytes().data(), w.bytes().size()});
  const Tensor back = decode_tensor_i8(r);
  const float expected[] = {127.0F, 3.0F, -3.0F, 1.0F, -1.0F};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back.data()[i], expected[i]) << "element " << i;
  }
}

TEST(Quantize, FourTimesSmallerThanF32) {
  const Shape big{1000};
  // 4 + 8 + 4 + 1000 vs 4 + 8 + 4000.
  EXPECT_LT(encoded_tensor_i8_bytes(big) * 3, 4U + 8 + 4000);
}

TEST(Quantize, RejectsHostileHeaders) {
  BufferWriter w;
  w.write_u32(99);  // absurd rank
  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_THROW(decode_tensor_i8(r), SerializationError);
}

TEST(Quantize, RejectsTruncatedPayload) {
  BufferWriter w;
  w.write_u32(1);
  w.write_i64(100);
  w.write_f32(0.1F);
  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_THROW(decode_tensor_i8(r), SerializationError);
}

// -------------------------------------------------------------- checkpoint

TEST(Checkpoint, SaveLoadRoundTrip) {
  models::FactoryConfig cfg;
  cfg.name = "mlp";
  cfg.image_size = 8;
  cfg.num_classes = 4;
  auto a = models::build_model(cfg);
  cfg.seed = 9;  // different weights
  auto b = models::build_model(cfg);
  const std::string path = testing::TempDir() + "/splitmed_ckpt_test.bin";
  save_parameters(path, a.net.parameters());
  load_parameters(path, b.net.parameters());
  const auto pa = a.net.parameters();
  const auto pb = b.net.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(pa[i]->value, pb[i]->value), 0.0F);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsDifferentArchitecture) {
  models::FactoryConfig cfg;
  cfg.name = "mlp";
  cfg.image_size = 8;
  cfg.num_classes = 4;
  auto a = models::build_model(cfg);
  cfg.name = "vgg-mini";
  cfg.image_size = 16;
  auto b = models::build_model(cfg);
  const std::string path = testing::TempDir() + "/splitmed_ckpt_arch.bin";
  save_parameters(path, a.net.parameters());
  EXPECT_THROW(load_parameters(path, b.net.parameters()),
               SerializationError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptMagic) {
  const std::string path = testing::TempDir() + "/splitmed_ckpt_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPT garbage";
  }
  models::FactoryConfig cfg;
  cfg.name = "mlp";
  cfg.image_size = 8;
  auto m = models::build_model(cfg);
  EXPECT_THROW(load_parameters(path, m.net.parameters()),
               SerializationError);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  models::FactoryConfig cfg;
  cfg.name = "mlp";
  cfg.image_size = 8;
  auto m = models::build_model(cfg);
  EXPECT_THROW(load_parameters("/nonexistent/ckpt.bin", m.net.parameters()),
               Error);
}

// --------------------------------------------------- trainer extensions

data::SyntheticCifar make_dataset(std::int64_t n, std::int64_t offset = 0) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  opt.index_offset = offset;
  return data::SyntheticCifar(opt);
}

core::ModelBuilder builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

core::SplitConfig base_config() {
  core::SplitConfig cfg;
  cfg.total_batch = 16;
  cfg.rounds = 30;
  cfg.eval_every = 30;
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  return cfg;
}

TEST(QuantizedProtocol, ShrinksTrafficAndStillLearns) {
  const auto train = make_dataset(96);
  const auto test = make_dataset(32, 96);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 2, prng);

  auto cfg = base_config();
  core::SplitTrainer f32(builder(), train, partition, test, cfg);
  const auto f32_report = f32.run();

  cfg.codec = WireCodec::kI8;
  core::SplitTrainer i8(builder(), train, partition, test, cfg);
  const auto i8_report = i8.run();

  // Activations + cut grads shrink ~4x; logits stay f32, so total is
  // somewhere between 2x and 4x smaller.
  EXPECT_LT(i8_report.total_bytes * 2, f32_report.total_bytes);
  EXPECT_GT(i8_report.final_accuracy, 0.5);
}

TEST(SmashNoise, BytesUnchangedLeakageReduced) {
  const auto train = make_dataset(96);
  const auto test = make_dataset(32, 96);
  Rng prng(2);
  const auto partition = data::partition_iid(train.size(), 2, prng);

  auto cfg = base_config();
  cfg.rounds = 5;
  cfg.eval_every = 5;
  core::SplitTrainer clean(builder(), train, partition, test, cfg);
  const auto clean_report = clean.run();

  cfg.smash_noise_std = 0.5F;
  core::SplitTrainer noisy(builder(), train, partition, test, cfg);
  const auto noisy_report = noisy.run();

  EXPECT_EQ(clean_report.total_bytes, noisy_report.total_bytes);
}

TEST(SmashNoise, HeavyNoiseDegradesAccuracy) {
  const auto train = make_dataset(96);
  const auto test = make_dataset(32, 96);
  Rng prng(3);
  const auto partition = data::partition_iid(train.size(), 2, prng);

  auto cfg = base_config();
  core::SplitTrainer clean(builder(), train, partition, test, cfg);
  const double clean_acc = clean.run().final_accuracy;

  cfg.smash_noise_std = 50.0F;  // drown the signal
  core::SplitTrainer noisy(builder(), train, partition, test, cfg);
  const double noisy_acc = noisy.run().final_accuracy;
  EXPECT_GT(clean_acc, noisy_acc + 0.2);
}

TEST(OverlappedSchedule, SameBytesLessSimTime) {
  const auto train = make_dataset(128);
  const auto test = make_dataset(32, 128);
  Rng prng(4);
  const auto partition = data::partition_iid(train.size(), 4, prng);

  auto cfg = base_config();
  cfg.schedule = core::Schedule::kSequential;
  core::SplitTrainer seq(builder(), train, partition, test, cfg);
  const auto seq_report = seq.run();

  cfg.schedule = core::Schedule::kOverlapped;
  core::SplitTrainer ovl(builder(), train, partition, test, cfg);
  const auto ovl_report = ovl.run();

  EXPECT_EQ(seq_report.total_bytes, ovl_report.total_bytes);
  EXPECT_LT(ovl_report.total_sim_seconds, seq_report.total_sim_seconds);
  EXPECT_GT(ovl_report.final_accuracy, 0.5);
}

TEST(OverlappedSchedule, SinglePlatformMatchesSequentialExactly) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16, 64);
  std::vector<std::int64_t> shard(64);
  for (std::int64_t i = 0; i < 64; ++i) shard[i] = i;

  auto cfg = base_config();
  cfg.rounds = 5;
  cfg.eval_every = 5;
  cfg.schedule = core::Schedule::kSequential;
  core::SplitTrainer seq(builder(), train, {shard}, test, cfg);
  seq.run();

  cfg.schedule = core::Schedule::kOverlapped;
  core::SplitTrainer ovl(builder(), train, {shard}, test, cfg);
  ovl.run();

  const auto ps = seq.platform(0).l1().parameters();
  const auto po = ovl.platform(0).l1().parameters();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(ps[i]->value, po[i]->value), 0.0F);
  }
}

TEST(Participation, PartialParticipationReducesTrafficButKeepsLiveness) {
  const auto train = make_dataset(128);
  const auto test = make_dataset(32, 128);
  Rng prng(5);
  const auto partition = data::partition_iid(train.size(), 4, prng);

  auto cfg = base_config();
  core::SplitTrainer full(builder(), train, partition, test, cfg);
  const auto full_report = full.run();

  cfg.participation = 0.5;
  core::SplitTrainer half(builder(), train, partition, test, cfg);
  const auto half_report = half.run();

  EXPECT_LT(half_report.total_bytes, full_report.total_bytes);
  EXPECT_EQ(half_report.steps_completed, cfg.rounds);
  // Every platform took at least one step across 30 rounds at p=0.5.
  for (std::size_t p = 0; p < half.num_platforms(); ++p) {
    EXPECT_GT(half.platform(p).steps_completed(), 0);
  }
}

TEST(Participation, TinyProbabilityStillRunsEveryRound) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16, 64);
  Rng prng(6);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = base_config();
  cfg.rounds = 10;
  cfg.eval_every = 10;
  cfg.participation = 1e-6;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  // The liveness fallback nominates exactly one platform per round.
  std::int64_t total_steps = 0;
  for (std::size_t p = 0; p < trainer.num_platforms(); ++p) {
    total_steps += trainer.platform(p).steps_completed();
  }
  EXPECT_EQ(total_steps, 10);
  EXPECT_EQ(report.steps_completed, 10);
}

TEST(Participation, InvalidValuesRejected) {
  const auto train = make_dataset(32);
  const auto test = make_dataset(8, 32);
  auto cfg = base_config();
  cfg.participation = 0.0;
  EXPECT_THROW(
      core::SplitTrainer(builder(), train, {{0, 1, 2, 3}}, test, cfg),
      InvalidArgument);
}


TEST(CombinedExtensions, QuantizedOverlappedNoisyPartialStillLearns) {
  // All four extensions stacked: int8 wire + overlapped schedule + mild
  // noise + 80% participation must still converge (integration smoke for
  // interactions between the features).
  const auto train = make_dataset(128);
  const auto test = make_dataset(32, 128);
  Rng prng(9);
  const auto partition = data::partition_iid(train.size(), 4, prng);
  auto cfg = base_config();
  cfg.rounds = 40;
  cfg.eval_every = 40;
  cfg.codec = WireCodec::kI8;
  cfg.schedule = core::Schedule::kOverlapped;
  cfg.smash_noise_std = 0.05F;
  cfg.participation = 0.8;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_GT(report.final_accuracy, 0.5);
}

TEST(CheckpointEndToEnd, SplitHalvesRestoreIntoFreshTrainer) {
  // Train, checkpoint each platform's L1 and the server body, then restore
  // into a brand-new trainer: evaluation must match exactly.
  const auto train = make_dataset(96);
  const auto test = make_dataset(32, 96);
  Rng prng(10);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  auto cfg = base_config();
  cfg.rounds = 10;
  cfg.eval_every = 10;

  core::SplitTrainer trained(builder(), train, partition, test, cfg);
  trained.run();
  const double trained_acc = trained.evaluate();

  const std::string dir = testing::TempDir();
  save_parameters(dir + "/server.ckpt",
                  trained.server().body().parameters());
  for (std::size_t p = 0; p < trained.num_platforms(); ++p) {
    save_parameters(dir + "/l1_" + std::to_string(p) + ".ckpt",
                    trained.platform(p).l1().parameters());
  }

  core::SplitTrainer fresh(builder(), train, partition, test, cfg);
  EXPECT_NE(fresh.evaluate(), trained_acc);  // untrained differs (very likely)
  load_parameters(dir + "/server.ckpt", fresh.server().body().parameters());
  for (std::size_t p = 0; p < fresh.num_platforms(); ++p) {
    load_parameters(dir + "/l1_" + std::to_string(p) + ".ckpt",
                    fresh.platform(p).l1().parameters());
  }
  EXPECT_DOUBLE_EQ(fresh.evaluate(), trained_acc);
  for (std::size_t p = 0; p < fresh.num_platforms(); ++p) {
    std::remove((dir + "/l1_" + std::to_string(p) + ".ckpt").c_str());
  }
  std::remove((dir + "/server.ckpt").c_str());
}

}  // namespace
}  // namespace splitmed
