// Tests for tensor/tensor.hpp.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed {
namespace {

TEST(Tensor, DefaultIsScalarZero) {
  const Tensor t;
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t[0], 0.0F);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), InvalidArgument);
}

TEST(Tensor, Factories) {
  EXPECT_EQ(Tensor::ones(Shape{3})[1], 1.0F);
  EXPECT_EQ(Tensor::full(Shape{2}, 2.5F)[0], 2.5F);
  const Tensor a = Tensor::arange(4);
  EXPECT_EQ(a[0], 0.0F);
  EXPECT_EQ(a[3], 3.0F);
}

TEST(Tensor, RandomFactoriesDeterministic) {
  Rng r1(9), r2(9);
  const Tensor a = Tensor::normal(Shape{16}, r1);
  const Tensor b = Tensor::normal(Shape{16}, r2);
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Tensor, UniformRespectsBounds) {
  Rng rng(1);
  const Tensor t = Tensor::uniform(Shape{256}, rng, -1.0F, 2.0F);
  for (const float v : t.data()) {
    EXPECT_GE(v, -1.0F);
    EXPECT_LT(v, 2.0F);
  }
}

TEST(Tensor, MultiDimAtUsesRowMajorOrder) {
  Tensor t(Shape{2, 3});
  t.at({1, 2}) = 7.0F;
  EXPECT_EQ(t[5], 7.0F);
  EXPECT_EQ(t.at({1, 2}), 7.0F);
}

TEST(Tensor, AtValidatesRankAndBounds) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at({1}), InvalidArgument);
  EXPECT_THROW(t.at({2, 0}), InvalidArgument);
  EXPECT_THROW(t.at({0, 3}), InvalidArgument);
}

TEST(Tensor, FlatIndexBounds) {
  Tensor t(Shape{4});
  EXPECT_THROW(t[4], InvalidArgument);
  EXPECT_THROW(t[-1], InvalidArgument);
}

TEST(Tensor, ReshapeKeepsDataChecksCount) {
  const Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshape(Shape{3, 2});
  EXPECT_EQ(r.at({2, 1}), 6.0F);
  EXPECT_THROW(t.reshape(Shape{4, 2}), InvalidArgument);
}

TEST(Tensor, SliceRowsCopies) {
  const Tensor t(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s.at({0, 0}), 3.0F);
  EXPECT_EQ(s.at({1, 1}), 6.0F);
}

TEST(Tensor, SliceRowsValidatesRange) {
  const Tensor t(Shape{3, 2});
  EXPECT_THROW(t.slice_rows(2, 1), InvalidArgument);
  EXPECT_THROW(t.slice_rows(0, 4), InvalidArgument);
}

TEST(Tensor, SliceRowsEmptyRangeAllowed) {
  const Tensor t(Shape{3, 2});
  const Tensor s = t.slice_rows(1, 1);
  EXPECT_EQ(s.shape().dim(0), 0);
  EXPECT_EQ(s.numel(), 0);
}

TEST(Tensor, ByteSize) {
  EXPECT_EQ(Tensor(Shape{2, 3}).byte_size(), 24U);
}

TEST(Tensor, FillAndZero) {
  Tensor t(Shape{4});
  t.fill(3.0F);
  EXPECT_EQ(t[2], 3.0F);
  t.zero();
  EXPECT_EQ(t[2], 0.0F);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b = a;
  b[0] = 9.0F;
  EXPECT_EQ(a[0], 1.0F);
}

TEST(Tensor, StrTruncates) {
  const Tensor t(Shape{100});
  EXPECT_NE(t.str().find("..."), std::string::npos);
}

}  // namespace
}  // namespace splitmed
