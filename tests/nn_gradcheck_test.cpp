// Finite-difference gradient checks for every differentiable layer.
//
// Method: with random input x and random upstream weights g, define
// L(x) = <forward(x), g>. The analytic backward gives dL/dx and accumulates
// dL/dθ; both are verified against central finite differences along random
// directions (directional derivatives — robust to fp32 noise while still
// catching any systematic gradient error).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "src/common/rng.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pool.hpp"
#include "src/nn/residual.hpp"
#include "src/nn/sequential.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

double inner(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    acc += static_cast<double>(ad[i]) * bd[i];
  }
  return acc;
}

/// Unit-norm random direction.
Tensor random_direction(const Shape& shape, Rng& rng) {
  Tensor d = Tensor::normal(shape, rng);
  const float norm = ops::l2_norm(d);
  return ops::scale(d, 1.0F / std::max(norm, 1e-12F));
}

struct CheckConfig {
  float eps = 1e-2F;
  float tolerance = 3e-2F;  // on the directional derivative, relative-ish
  int directions = 3;
  std::uint64_t seed = 12345;
};

void expect_close(double analytic, double numeric, float tolerance,
                  const std::string& what) {
  const double scale = std::max({std::abs(analytic), std::abs(numeric), 1e-2});
  EXPECT_NEAR(analytic, numeric, tolerance * scale) << what;
}

/// Checks dL/dinput and dL/dθ for `layer` on a random input of `in_shape`.
void gradcheck_layer(nn::Layer& layer, const Shape& in_shape,
                     const CheckConfig& cfg = {}) {
  Rng rng(cfg.seed);
  const Tensor x = Tensor::normal(in_shape, rng);
  const Shape out_shape = layer.output_shape(in_shape);
  const Tensor g = Tensor::normal(out_shape, rng);

  auto loss_at = [&](const Tensor& input) {
    return inner(layer.forward(input, /*training=*/true), g);
  };

  // Analytic pass (parameters accumulate, input gradient returned).
  layer.zero_grad();
  layer.forward(x, true);
  const Tensor grad_in = layer.backward(g);

  // Input directional derivatives.
  for (int d = 0; d < cfg.directions; ++d) {
    const Tensor dir = random_direction(in_shape, rng);
    const double analytic = inner(grad_in, dir);
    Tensor xp = x, xm = x;
    ops::axpy(cfg.eps, dir, xp);
    ops::axpy(-cfg.eps, dir, xm);
    const double numeric = (loss_at(xp) - loss_at(xm)) / (2.0 * cfg.eps);
    expect_close(analytic, numeric, cfg.tolerance,
                 layer.name() + " input dir " + std::to_string(d));
  }

  // Parameter directional derivatives.
  for (nn::Parameter* p : layer.parameters()) {
    for (int d = 0; d < 2; ++d) {
      const Tensor dir = random_direction(p->value.shape(), rng);
      const double analytic = inner(p->grad, dir);
      const Tensor saved = p->value;
      ops::axpy(cfg.eps, dir, p->value);
      const double lp = loss_at(x);
      p->value = saved;
      ops::axpy(-cfg.eps, dir, p->value);
      const double lm = loss_at(x);
      p->value = saved;
      const double numeric = (lp - lm) / (2.0 * cfg.eps);
      expect_close(analytic, numeric, cfg.tolerance,
                   layer.name() + " param " + p->name + " dir " +
                       std::to_string(d));
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  nn::Linear layer(6, 4, rng);
  gradcheck_layer(layer, Shape{5, 6});
}

TEST(GradCheck, LinearSingleRow) {
  Rng rng(2);
  nn::Linear layer(3, 7, rng);
  gradcheck_layer(layer, Shape{1, 3});
}

struct ConvCase {
  std::int64_t in_c, out_c, kernel, stride, pad, size;
};

class ConvGradCheck : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradCheck, MatchesFiniteDifference) {
  const auto c = GetParam();
  Rng rng(3);
  nn::Conv2d layer(c.in_c, c.out_c, c.kernel, c.stride, c.pad, rng);
  gradcheck_layer(layer, Shape{2, c.in_c, c.size, c.size});
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradCheck,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4},   // pointwise
                      ConvCase{3, 4, 3, 1, 1, 6},   // same-pad 3x3
                      ConvCase{2, 3, 3, 2, 0, 7},   // strided, valid
                      ConvCase{2, 2, 5, 1, 2, 8},   // 5x5 same-pad
                      ConvCase{4, 1, 3, 2, 1, 8})); // channel collapse

TEST(GradCheck, ReLU) {
  nn::ReLU layer;
  gradcheck_layer(layer, Shape{4, 10});
}

TEST(GradCheck, Tanh) {
  nn::Tanh layer;
  gradcheck_layer(layer, Shape{4, 10});
}

TEST(GradCheck, Sigmoid) {
  nn::Sigmoid layer;
  gradcheck_layer(layer, Shape{4, 10});
}

TEST(GradCheck, MaxPool) {
  nn::MaxPool2d layer(2);
  gradcheck_layer(layer, Shape{2, 3, 6, 6});
}

TEST(GradCheck, MaxPoolStride1) {
  nn::MaxPool2d layer(2, 1);
  CheckConfig cfg;
  cfg.eps = 5e-3F;  // overlapping windows: keep perturbations below tie gaps
  gradcheck_layer(layer, Shape{1, 2, 5, 5}, cfg);
}


TEST(GradCheck, AvgPool) {
  nn::AvgPool2d layer(2);
  gradcheck_layer(layer, Shape{2, 3, 6, 6});
}

TEST(GradCheck, AvgPoolStride1) {
  nn::AvgPool2d layer(3, 1);
  gradcheck_layer(layer, Shape{1, 2, 5, 5});
}

TEST(GradCheck, GlobalAvgPool) {
  nn::GlobalAvgPool layer;
  gradcheck_layer(layer, Shape{3, 4, 5, 5});
}

TEST(GradCheck, BatchNorm) {
  nn::BatchNorm2d layer(3);
  gradcheck_layer(layer, Shape{4, 3, 4, 4});
}

TEST(GradCheck, BatchNormSmallBatch) {
  nn::BatchNorm2d layer(2);
  gradcheck_layer(layer, Shape{2, 2, 3, 3});
}

TEST(GradCheck, Flatten) {
  nn::Flatten layer;
  gradcheck_layer(layer, Shape{3, 2, 4});
}

TEST(GradCheck, ResidualBlockIdentitySkip) {
  Rng rng(4);
  nn::ResidualBlock layer(3, 3, 1, rng);
  gradcheck_layer(layer, Shape{2, 3, 6, 6});
}

TEST(GradCheck, ResidualBlockProjectedSkip) {
  Rng rng(5);
  nn::ResidualBlock layer(3, 6, 2, rng);
  gradcheck_layer(layer, Shape{2, 3, 6, 6});
}

TEST(GradCheck, SequentialConvStack) {
  Rng rng(6);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  seq.emplace<nn::BatchNorm2d>(4);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::MaxPool2d>(2);
  seq.emplace<nn::Flatten>();
  seq.emplace<nn::Linear>(4 * 3 * 3, 5, rng);
  // Small eps: first-layer perturbations amplified through BN + pooling can
  // cross ReLU/argmax kinks at the default step size.
  CheckConfig cfg;
  cfg.eps = 1e-3F;
  cfg.tolerance = 5e-2F;
  gradcheck_layer(seq, Shape{2, 2, 6, 6}, cfg);
}

TEST(GradCheck, SequentialMlp) {
  Rng rng(7);
  nn::Sequential seq;
  seq.emplace<nn::Flatten>();
  seq.emplace<nn::Linear>(12, 8, rng);
  seq.emplace<nn::Tanh>();
  seq.emplace<nn::Linear>(8, 3, rng);
  gradcheck_layer(seq, Shape{4, 3, 2, 2});
}

}  // namespace
}  // namespace splitmed
