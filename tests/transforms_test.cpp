// Tests for data/transforms.hpp and an augmentation-in-training smoke test.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/error.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/data/transforms.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

Tensor test_image() {
  // 1 channel, 2x3, distinct values.
  return Tensor(Shape{1, 2, 3}, {1, 2, 3,
                                 4, 5, 6});
}

TEST(RandomHorizontalFlip, AlwaysFlipMirrorsColumns) {
  data::RandomHorizontalFlip flip(1.0F);
  Rng rng(1);
  const Tensor out = flip.apply(test_image(), rng);
  EXPECT_EQ(out.at({0, 0, 0}), 3.0F);
  EXPECT_EQ(out.at({0, 0, 2}), 1.0F);
  EXPECT_EQ(out.at({0, 1, 1}), 5.0F);
}

TEST(RandomHorizontalFlip, NeverFlipIsIdentity) {
  data::RandomHorizontalFlip flip(0.0F);
  Rng rng(1);
  const Tensor in = test_image();
  EXPECT_EQ(ops::max_abs_diff(flip.apply(in, rng), in), 0.0F);
}

TEST(RandomHorizontalFlip, FlipIsInvolution) {
  data::RandomHorizontalFlip flip(1.0F);
  Rng rng(2);
  const Tensor in = test_image();
  const Tensor twice = flip.apply(flip.apply(in, rng), rng);
  EXPECT_EQ(ops::max_abs_diff(twice, in), 0.0F);
}

TEST(RandomHorizontalFlip, RateRoughlyP) {
  data::RandomHorizontalFlip flip(0.3F);
  Rng rng(3);
  const Tensor in = test_image();
  int flips = 0;
  for (int i = 0; i < 2000; ++i) {
    if (ops::max_abs_diff(flip.apply(in, rng), in) > 0.0F) ++flips;
  }
  EXPECT_NEAR(flips / 2000.0, 0.3, 0.05);
}

TEST(RandomCrop, PreservesShapeAndContentSet) {
  data::RandomCrop crop(1);
  Rng rng(4);
  const Tensor in = test_image();
  const Tensor out = crop.apply(in, rng);
  EXPECT_EQ(out.shape(), in.shape());
  // Every output value is either zero padding or one of the inputs.
  for (const float v : out.data()) {
    const bool known = v == 0.0F || (v >= 1.0F && v <= 6.0F);
    EXPECT_TRUE(known) << v;
  }
}

TEST(RandomCrop, CenterOffsetIsIdentity) {
  // With padding 1, offset (1,1) reproduces the original; over many draws
  // the identity must occur.
  data::RandomCrop crop(1);
  Rng rng(5);
  const Tensor in = test_image();
  bool saw_identity = false;
  for (int i = 0; i < 100 && !saw_identity; ++i) {
    saw_identity = ops::max_abs_diff(crop.apply(in, rng), in) == 0.0F;
  }
  EXPECT_TRUE(saw_identity);
}

TEST(Normalize, StandardizesChannels) {
  data::Normalize norm({2.0F}, {4.0F});
  Rng rng(6);
  const Tensor in = test_image();
  const Tensor out = norm.apply(in, rng);
  EXPECT_FLOAT_EQ(out.at({0, 0, 0}), (1.0F - 2.0F) / 4.0F);
  EXPECT_FLOAT_EQ(out.at({0, 1, 2}), 1.0F);
}

TEST(Normalize, ValidatesChannels) {
  data::Normalize norm({0.0F, 0.0F}, {1.0F, 1.0F});
  Rng rng(7);
  EXPECT_THROW(norm.apply(test_image(), rng), InvalidArgument);
  EXPECT_THROW(data::Normalize({0.0F}, {0.0F}), InvalidArgument);
}

TEST(Compose, AppliesInOrder) {
  std::vector<std::unique_ptr<data::Transform>> ts;
  ts.push_back(std::make_unique<data::RandomHorizontalFlip>(1.0F));
  ts.push_back(std::make_unique<data::Normalize>(
      std::vector<float>{0.0F}, std::vector<float>{2.0F}));
  data::Compose compose(std::move(ts));
  Rng rng(8);
  const Tensor out = compose.apply(test_image(), rng);
  // flipped then halved: position (0,0,0) = 3 / 2.
  EXPECT_FLOAT_EQ(out.at({0, 0, 0}), 1.5F);
}

TEST(ApplyToBatch, TransformsEveryImage) {
  data::RandomHorizontalFlip flip(1.0F);
  Rng rng(9);
  Tensor batch(Shape{2, 1, 2, 3});
  auto d = batch.data();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = static_cast<float>(i);
  const Tensor out = data::apply_to_batch(flip, batch, rng);
  EXPECT_EQ(out.shape(), batch.shape());
  EXPECT_EQ(out.at({0, 0, 0, 0}), 2.0F);
  EXPECT_EQ(out.at({1, 0, 0, 0}), 8.0F);
}

TEST(ApplyToBatch, DeterministicForSameRngState) {
  data::RandomCrop crop(2);
  const auto ds = [] {
    data::SyntheticCifarOptions opt;
    opt.num_examples = 4;
    opt.image_size = 8;
    return data::SyntheticCifar(opt);
  }();
  const Tensor batch = ds.batch_images(std::vector<std::int64_t>{0, 1, 2, 3});
  Rng r1(42), r2(42);
  const Tensor a = data::apply_to_batch(crop, batch, r1);
  const Tensor b = data::apply_to_batch(crop, batch, r2);
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0F);
}

}  // namespace
}  // namespace splitmed
