// Tests for serial/: buffer primitives, tensor codec, envelope sizing.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/serial/buffer.hpp"
#include "src/serial/message.hpp"
#include "src/serial/tensor_codec.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

TEST(Buffer, ScalarRoundTrip) {
  BufferWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i64(-42);
  w.write_f32(1.5F);
  w.write_f64(-2.25);
  w.write_string("hello");

  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f32(), 1.5F);
  EXPECT_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, TruncatedReadThrows) {
  BufferWriter w;
  w.write_u32(7);
  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_EQ(r.read_u32(), 7U);
  EXPECT_THROW(r.read_u8(), SerializationError);
}

TEST(Buffer, TruncatedStringThrows) {
  BufferWriter w;
  w.write_u32(100);  // claims 100 bytes follow, none do
  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_THROW(r.read_string(), SerializationError);
}

TEST(Buffer, F32SpanRoundTrip) {
  BufferWriter w;
  const std::vector<float> vs = {1, 2, 3, 4.5F};
  w.write_f32_span(vs);
  BufferReader r({w.bytes().data(), w.bytes().size()});
  std::vector<float> out(4);
  r.read_f32_span(out);
  EXPECT_EQ(out, vs);
}

TEST(TensorCodec, RoundTripPreservesShapeAndData) {
  Rng rng(5);
  for (const Shape& shape :
       {Shape{}, Shape{0}, Shape{7}, Shape{2, 3}, Shape{2, 3, 4, 5}}) {
    const Tensor t = Tensor::normal(shape, rng);
    BufferWriter w;
    encode_tensor(t, w);
    EXPECT_EQ(w.size(), encoded_tensor_bytes(shape));
    BufferReader r({w.bytes().data(), w.bytes().size()});
    const Tensor back = decode_tensor(r);
    EXPECT_EQ(back.shape(), t.shape());
    if (t.numel() > 0) {
      EXPECT_EQ(ops::max_abs_diff(back, t), 0.0F);
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(TensorCodec, RejectsHostileRank) {
  BufferWriter w;
  w.write_u32(1000);  // absurd rank
  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_THROW(decode_tensor(r), SerializationError);
}

TEST(TensorCodec, RejectsNegativeDim) {
  BufferWriter w;
  w.write_u32(1);
  w.write_i64(-5);
  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_THROW(decode_tensor(r), SerializationError);
}

TEST(TensorCodec, RejectsTruncatedPayload) {
  BufferWriter w;
  w.write_u32(1);
  w.write_i64(10);  // promises 10 floats, delivers none
  BufferReader r({w.bytes().data(), w.bytes().size()});
  EXPECT_THROW(decode_tensor(r), SerializationError);
}

TEST(Envelope, WireBytesIncludeHeader) {
  Envelope e = make_envelope(1, 2, 3, 4, std::vector<std::uint8_t>(10));
  EXPECT_EQ(e.wire_bytes(), Envelope::kEnvelopeHeaderBytes + 10);
  EXPECT_EQ(e.src, 1U);
  EXPECT_EQ(e.dst, 2U);
  EXPECT_EQ(e.kind, 3U);
  EXPECT_EQ(e.round, 4U);
}

TEST(EncodedBytes, MatchesFormula) {
  EXPECT_EQ(encoded_tensor_bytes(Shape{}), 4U + 4);       // rank + 1 scalar
  EXPECT_EQ(encoded_tensor_bytes(Shape{3}), 4U + 8 + 12); // rank+dim+3 floats
  EXPECT_EQ(encoded_tensor_bytes(Shape{2, 2}), 4U + 16 + 16);
}

}  // namespace
}  // namespace splitmed
