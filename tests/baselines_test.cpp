// Tests for baselines/: sync SGD, FedAvg, centralized, local-only — learning
// sanity plus exact byte accounting against the analytic model.
#include <gtest/gtest.h>

#include "src/baselines/centralized.hpp"
#include "src/baselines/cyclic.hpp"
#include "src/baselines/fedavg.hpp"
#include "src/baselines/local_only.hpp"
#include "src/baselines/sync_sgd.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"
#include "src/models/model_stats.hpp"

namespace splitmed {
namespace {

data::SyntheticCifar make_dataset(std::int64_t n, std::uint64_t seed = 42) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  opt.seed = seed;
  return data::SyntheticCifar(opt);
}

core::ModelBuilder builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

baselines::BaselineConfig base_config() {
  baselines::BaselineConfig cfg;
  cfg.total_batch = 16;
  cfg.steps = 60;
  cfg.eval_every = 20;
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  return cfg;
}

TEST(SyncSgd, LearnsAboveChance) {
  const auto train = make_dataset(128);
  const auto test = make_dataset(32);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 4, prng);
  baselines::SyncSgdTrainer trainer(builder(), train, partition, test,
                                    base_config());
  const auto report = trainer.run();
  EXPECT_EQ(report.protocol, "sync-sgd");
  EXPECT_GT(report.final_accuracy, 0.5);
}

TEST(SyncSgd, BytesMatchAnalyticModelExactly) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  Rng prng(2);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = base_config();
  cfg.steps = 5;
  cfg.eval_every = 5;
  baselines::SyncSgdTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();

  models::BuiltModel model = builder()();
  auto stats = models::ModelStats::analyze(model);
  EXPECT_EQ(report.total_bytes, 5 * stats.syncsgd_step_bytes(3));
  // 2 messages per worker per step.
  EXPECT_EQ(trainer.network().stats().total_messages(), 5U * 3U * 2U);
}

TEST(SyncSgd, ByteBudgetStopsEarly) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  Rng prng(3);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  models::BuiltModel model = builder()();
  auto stats = models::ModelStats::analyze(model);
  auto cfg = base_config();
  cfg.steps = 1000;
  cfg.byte_budget = 2 * stats.syncsgd_step_bytes(2);
  baselines::SyncSgdTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_EQ(report.steps_completed, 2);
}

TEST(FedAvg, LearnsAboveChance) {
  const auto train = make_dataset(128);
  const auto test = make_dataset(32);
  Rng prng(4);
  const auto partition = data::partition_iid(train.size(), 4, prng);
  auto cfg = base_config();
  cfg.steps = 15;  // rounds
  cfg.local_steps = 4;
  cfg.eval_every = 5;
  baselines::FedAvgTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_EQ(report.protocol, "fedavg");
  EXPECT_GT(report.final_accuracy, 0.5);
}

TEST(FedAvg, RoundBytesMatchAnalyticModel) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  Rng prng(5);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = base_config();
  cfg.steps = 4;
  cfg.eval_every = 4;
  baselines::FedAvgTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();

  models::BuiltModel model = builder()();
  auto stats = models::ModelStats::analyze(model);
  EXPECT_EQ(report.total_bytes, 4 * stats.fedavg_round_bytes(3));
}

TEST(FedAvg, SingleLocalStepKeepsPlatformsAveraged) {
  // With K platforms over identical shards and local_steps=1, FedAvg's
  // average should still learn (sanity of the weighted averaging path).
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  const std::vector<std::int64_t> shard = {0, 1, 2, 3, 4, 5, 6, 7,
                                           8, 9, 10, 11, 12, 13, 14, 15};
  auto cfg = base_config();
  cfg.steps = 30;
  cfg.local_steps = 1;
  cfg.eval_every = 30;
  baselines::FedAvgTrainer trainer(builder(), train, {shard, shard}, test,
                                   cfg);
  const auto report = trainer.run();
  EXPECT_GT(report.final_accuracy, 0.3);
}

TEST(Centralized, LearnsAndMovesNoBytes) {
  const auto train = make_dataset(128);
  const auto test = make_dataset(32);
  baselines::CentralizedTrainer trainer(builder(), train, test,
                                        base_config());
  const auto report = trainer.run();
  EXPECT_EQ(report.protocol, "centralized");
  EXPECT_GT(report.final_accuracy, 0.5);
  EXPECT_EQ(report.total_bytes, 0U);
}

TEST(LocalOnly, ReportsPerPlatformSpread) {
  const auto train = make_dataset(96);
  const auto test = make_dataset(32);
  Rng prng(6);
  // Heavy imbalance: platform 2 sees very little data.
  const auto partition =
      data::partition_weighted(train.size(), {8.0, 3.0, 1.0}, prng);
  auto cfg = base_config();
  cfg.steps = 40;
  cfg.eval_every = 40;
  baselines::LocalOnlyTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  ASSERT_EQ(report.platform_accuracy.size(), 3U);
  EXPECT_GE(report.max_accuracy, report.min_accuracy);
  EXPECT_EQ(report.combined.protocol, "local-only");
  EXPECT_GT(report.combined.final_accuracy, 0.25);
}

TEST(Baselines, ValidateConstruction) {
  const auto train = make_dataset(16);
  const auto test = make_dataset(8);
  auto cfg = base_config();
  EXPECT_THROW(
      baselines::SyncSgdTrainer(builder(), train, {}, test, cfg),
      InvalidArgument);
  cfg.local_steps = 0;
  EXPECT_THROW(
      baselines::FedAvgTrainer(builder(), train, {{0, 1}}, test, cfg),
      InvalidArgument);
}


TEST(Cyclic, LearnsAboveChance) {
  const auto train = make_dataset(128);
  const auto test = make_dataset(32);
  Rng prng(7);
  const auto partition = data::partition_iid(train.size(), 4, prng);
  auto cfg = base_config();
  cfg.steps = 15;  // cycles
  cfg.local_steps = 3;
  cfg.eval_every = 5;
  baselines::CyclicTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_EQ(report.protocol, "cyclic");
  EXPECT_GT(report.final_accuracy, 0.5);
}

TEST(Cyclic, OneTransferPerHop) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  Rng prng(8);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = base_config();
  cfg.steps = 4;
  cfg.eval_every = 4;
  baselines::CyclicTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  // K hops per cycle, one full-parameter message per hop.
  EXPECT_EQ(trainer.network().stats().total_messages(), 4U * 3U);

  models::BuiltModel model = builder()();
  auto stats = models::ModelStats::analyze(model);
  EXPECT_EQ(report.total_bytes, 4 * 3 * stats.parameter_message_bytes());
}

TEST(Cyclic, NeedsAtLeastTwoPlatforms) {
  const auto train = make_dataset(32);
  const auto test = make_dataset(8);
  auto cfg = base_config();
  EXPECT_THROW(
      baselines::CyclicTrainer(builder(), train, {{0, 1, 2}}, test, cfg),
      InvalidArgument);
}

}  // namespace
}  // namespace splitmed
