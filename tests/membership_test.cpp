// Unit tests for the membership subsystem: lifecycle leases, strike /
// quarantine / probation policy, control-frame codecs, the deterministic
// ChurnPlan generator, config validation, and bitwise state roundtrips.
// Everything here drives MembershipService directly with hand-picked sim
// times — the end-to-end churn behaviour lives in churn_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/membership.hpp"
#include "src/serial/buffer.hpp"
#include "src/tensor/tensor.hpp"

namespace splitmed {
namespace {

using core::ChurnPlan;
using core::ChurnRates;
using core::CrashEvent;
using core::HeartbeatMsg;
using core::JoinAcceptMsg;
using core::JoinRequestMsg;
using core::MemberState;
using core::MembershipConfig;
using core::MembershipService;
using core::PoisonEvent;
using core::PoisonKind;
using core::RejectReason;
using core::RejoinMode;
using core::UpdateRejectMsg;
using core::decode_heartbeat_payload;
using core::decode_join_accept_payload;
using core::decode_join_request_payload;
using core::decode_update_reject_payload;
using core::encode_heartbeat_payload;
using core::encode_join_accept_payload;
using core::encode_join_request_payload;
using core::encode_update_reject_payload;

MembershipConfig base_config() {
  MembershipConfig cfg;
  cfg.enabled = true;
  return cfg;
}

MembershipService make_service(const MembershipConfig& cfg,
                               std::size_t platforms = 2,
                               ChurnPlan plan = {}) {
  return MembershipService(cfg, std::move(plan), platforms, /*seed=*/7,
                           std::vector<std::int64_t>(platforms, 8));
}

// --- configuration validation (errors must name the flag) -------------------

TEST(MembershipConfigValidation, RejectsNonPositiveDeadline) {
  auto cfg = base_config();
  cfg.round_deadline_sec = 0.0;
  try {
    cfg.validate(2);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("round_deadline_sec"),
              std::string::npos)
        << e.what();
  }
}

TEST(MembershipConfigValidation, RejectsQuorumAbovePlatformCount) {
  auto cfg = base_config();
  cfg.min_quorum = 5;
  try {
    cfg.validate(3);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("min_quorum"), std::string::npos) << msg;
    EXPECT_NE(msg.find('3'), std::string::npos) << msg;  // platform count too
  }
}

TEST(MembershipConfigValidation, RejectsEachBadField) {
  const auto expect_throw = [](auto mutate) {
    auto cfg = base_config();
    mutate(cfg);
    EXPECT_THROW(cfg.validate(4), InvalidArgument);
  };
  expect_throw([](auto& c) { c.heartbeat_interval_sec = -1.0; });
  expect_throw([](auto& c) { c.lease_sec = 0.0; });
  expect_throw([](auto& c) { c.dead_sec = c.lease_sec; });  // must exceed
  expect_throw([](auto& c) {
    c.round_deadline_sec = std::numeric_limits<double>::infinity();
  });
  expect_throw([](auto& c) { c.min_quorum = 0; });
  expect_throw([](auto& c) { c.norm_bomb_factor = 1.0; });
  expect_throw([](auto& c) { c.norm_window = 0; });
  expect_throw([](auto& c) { c.norm_warmup = c.norm_window + 1; });
  expect_throw([](auto& c) { c.strikes_to_quarantine = 0; });
  expect_throw([](auto& c) { c.quarantine_rounds = 0; });
  expect_throw([](auto& c) { c.probation_readmit_prob = 0.0; });
  expect_throw([](auto& c) { c.probation_clean_steps = 0; });
  EXPECT_NO_THROW(base_config().validate(4));
}

TEST(ChurnPlanValidation, RejectsOutOfRangeEvents) {
  ChurnPlan plan;
  plan.crashes.push_back(CrashEvent{/*platform=*/5, /*round=*/1, 60.0,
                                    RejoinMode::kWarm});
  EXPECT_THROW(plan.validate(3), InvalidArgument);
  plan.crashes[0] = CrashEvent{0, /*round=*/0, 60.0, RejoinMode::kWarm};
  EXPECT_THROW(plan.validate(3), InvalidArgument);
  plan.crashes[0] = CrashEvent{0, 1, /*offline_sec=*/-1.0, RejoinMode::kWarm};
  EXPECT_THROW(plan.validate(3), InvalidArgument);
  plan.crashes.clear();
  plan.poisons.push_back(
      PoisonEvent{1, 2, /*duration_rounds=*/0, PoisonKind::kNormBomb, 10.0F});
  EXPECT_THROW(plan.validate(3), InvalidArgument);
  plan.poisons[0].duration_rounds = 2;
  EXPECT_NO_THROW(plan.validate(3));
}

// --- ChurnPlan::random ------------------------------------------------------

std::vector<std::tuple<std::size_t, std::int64_t, double, int>> crash_tuples(
    const ChurnPlan& plan) {
  std::vector<std::tuple<std::size_t, std::int64_t, double, int>> out;
  for (const auto& e : plan.crashes) {
    out.emplace_back(e.platform, e.round, e.offline_sec,
                     static_cast<int>(e.rejoin));
  }
  return out;
}

TEST(ChurnPlanRandom, DeterministicInSeedAndRates) {
  ChurnRates rates;
  rates.crash_rate = 0.05;
  rates.poison_rate = 0.03;
  const auto a = ChurnPlan::random(42, 8, 200, rates);
  const auto b = ChurnPlan::random(42, 8, 200, rates);
  const auto c = ChurnPlan::random(43, 8, 200, rates);
  EXPECT_EQ(crash_tuples(a), crash_tuples(b));
  ASSERT_EQ(a.poisons.size(), b.poisons.size());
  EXPECT_TRUE(a.any());
  EXPECT_NE(crash_tuples(a), crash_tuples(c));  // a different seed reschedules
  EXPECT_NO_THROW(a.validate(8));
}

TEST(ChurnPlanRandom, RespectsPerPlatformEventGap) {
  ChurnRates rates;
  rates.crash_rate = 0.5;  // dense schedule stresses the gap rule
  rates.poison_rate = 0.3;
  const auto plan = ChurnPlan::random(9, 4, 100, rates);
  std::vector<std::int64_t> last(4, -100);
  // Events are generated round-major, so per-platform rounds are ascending.
  const auto check = [&last](std::size_t platform, std::int64_t round) {
    EXPECT_GE(round - last[platform], 8)
        << "platform " << platform << " has events at rounds "
        << last[platform] << " and " << round;
    last[platform] = round;
  };
  std::vector<std::pair<std::int64_t, std::size_t>> events;
  for (const auto& e : plan.crashes) events.emplace_back(e.round, e.platform);
  for (const auto& e : plan.poisons) events.emplace_back(e.round, e.platform);
  std::sort(events.begin(), events.end());
  for (const auto& [round, platform] : events) check(platform, round);
  EXPECT_GT(events.size(), 10U);
}

TEST(ChurnPlanRandom, ZeroRatesYieldEmptyPlan) {
  const auto plan = ChurnPlan::random(1, 4, 50, ChurnRates{});
  EXPECT_FALSE(plan.any());
}

// --- control-frame codecs ---------------------------------------------------

TEST(MembershipCodec, HeartbeatRoundtrips) {
  HeartbeatMsg m;
  m.platform = 3;
  m.beat = 17;
  m.last_completed_round = 255;
  const auto bytes = encode_heartbeat_payload(m);
  const auto out = decode_heartbeat_payload(bytes);
  EXPECT_EQ(out.platform, m.platform);
  EXPECT_EQ(out.beat, m.beat);
  EXPECT_EQ(out.last_completed_round, m.last_completed_round);
}

TEST(MembershipCodec, JoinRequestRoundtripsAndValidatesMode) {
  JoinRequestMsg m;
  m.platform = 1;
  m.mode = RejoinMode::kCold;
  m.last_completed_round = 9;
  auto bytes = encode_join_request_payload(m);
  const auto out = decode_join_request_payload(bytes);
  EXPECT_EQ(out.mode, RejoinMode::kCold);
  EXPECT_EQ(out.last_completed_round, 9U);
  bytes[4] = 7;  // the mode byte
  EXPECT_THROW(decode_join_request_payload(bytes), SerializationError);
}

TEST(MembershipCodec, JoinAcceptRoundtripsWithAndWithoutGenesis) {
  JoinAcceptMsg bare;
  bare.current_round = 12;
  const auto out1 = decode_join_accept_payload(encode_join_accept_payload(bare));
  EXPECT_EQ(out1.current_round, 12U);
  EXPECT_FALSE(out1.has_l1);

  JoinAcceptMsg full;
  full.current_round = 13;
  full.has_l1 = true;
  full.l1 = Tensor::full(Shape{6}, 0.25F);
  const auto out2 = decode_join_accept_payload(encode_join_accept_payload(full));
  ASSERT_TRUE(out2.has_l1);
  ASSERT_EQ(out2.l1.numel(), 6);
  for (float v : out2.l1.data()) EXPECT_EQ(v, 0.25F);
}

TEST(MembershipCodec, UpdateRejectRoundtripsAndValidatesEnums) {
  UpdateRejectMsg m;
  m.reason = RejectReason::kNormBomb;
  m.strikes = 2;
  m.state = MemberState::kQuarantined;
  auto bytes = encode_update_reject_payload(m);
  const auto out = decode_update_reject_payload(bytes);
  EXPECT_EQ(out.reason, RejectReason::kNormBomb);
  EXPECT_EQ(out.strikes, 2U);
  EXPECT_EQ(out.state, MemberState::kQuarantined);
  bytes[0] = 0;  // reason 0 is not a valid RejectReason
  EXPECT_THROW(decode_update_reject_payload(bytes), SerializationError);
  bytes[0] = 1;
  bytes[5] = 6;  // lifecycle state byte out of range
  EXPECT_THROW(decode_update_reject_payload(bytes), SerializationError);
}

// --- lifecycle leases -------------------------------------------------------

TEST(MembershipLifecycle, LeaseSilenceDegradesActiveToSuspectToDead) {
  auto cfg = base_config();  // lease 30s, dead 90s
  auto svc = make_service(cfg);
  svc.begin_round(1, 0.0);
  EXPECT_EQ(svc.state(0), MemberState::kJoining);  // never heard from: exempt
  svc.observe_contact(0, 1.0);
  EXPECT_EQ(svc.state(0), MemberState::kActive);
  svc.begin_round(2, 20.0);  // 19s of silence: lease still current
  EXPECT_EQ(svc.state(0), MemberState::kActive);
  svc.begin_round(3, 40.0);  // 39s: past the 30s lease
  EXPECT_EQ(svc.state(0), MemberState::kSuspect);
  EXPECT_TRUE(svc.can_step(0));  // suspect is watched, not excluded
  svc.observe_contact(0, 41.0);  // any frame renews the lease
  EXPECT_EQ(svc.state(0), MemberState::kActive);
  // 159s of silence: ACTIVE -> SUSPECT -> DEAD in one sweep, and the
  // online-but-believed-dead platform is promoted straight to REJOINING —
  // the server will not admit it without a (warm) handshake.
  svc.begin_round(4, 200.0);
  EXPECT_EQ(svc.state(0), MemberState::kRejoining);
  EXPECT_FALSE(svc.can_step(0));
  EXPECT_TRUE(svc.needs_rejoin(0));
  EXPECT_EQ(svc.rejoin_mode(0), RejoinMode::kWarm);
  // The ledger proves it passed through SUSPECT and DEAD.
  const auto idx = [](MemberState s) { return static_cast<std::size_t>(s); };
  EXPECT_EQ(svc.ledger().transitions[idx(MemberState::kSuspect)]
                                    [idx(MemberState::kDead)],
            1);
  svc.note_join_request(0, RejoinMode::kWarm, 201.5);
  svc.note_rejoin_completed(0, 201.5);
  EXPECT_EQ(svc.state(0), MemberState::kActive);
  EXPECT_TRUE(svc.can_step(0));
  EXPECT_EQ(svc.ledger().rejoins_warm, 1);
}

TEST(MembershipLifecycle, CrashEventTakesPlatformOfflineAndBack) {
  ChurnPlan plan;
  plan.crashes.push_back(CrashEvent{0, /*round=*/2, /*offline_sec=*/10.0,
                                    RejoinMode::kCold});
  auto svc = make_service(base_config(), 2, plan);
  svc.begin_round(1, 0.0);
  EXPECT_TRUE(svc.online(0));
  svc.begin_round(2, 1.0);  // crash fires: offline until t=11
  EXPECT_FALSE(svc.online(0));
  EXPECT_FALSE(svc.can_step(0));
  EXPECT_FALSE(svc.sends_heartbeat(0, 1.0));
  EXPECT_TRUE(svc.can_step(1));
  EXPECT_EQ(svc.ledger().crashes, 1);
  // Offline rounds bleed the platform's minibatch into the outage ledger.
  EXPECT_EQ(svc.ledger().outage_examples_lost, 8);
  svc.begin_round(3, 5.0);  // still mid-outage
  EXPECT_FALSE(svc.online(0));
  EXPECT_EQ(svc.ledger().outage_examples_lost, 16);
  svc.begin_round(4, 12.0);  // outage served: owes a COLD handshake
  EXPECT_TRUE(svc.online(0));
  EXPECT_TRUE(svc.needs_rejoin(0));
  EXPECT_EQ(svc.rejoin_mode(0), RejoinMode::kCold);
  EXPECT_FALSE(svc.can_step(0));  // not until the handshake lands
  svc.note_join_request(0, RejoinMode::kCold, 12.5);
  svc.note_rejoin_completed(0, 12.5);
  EXPECT_TRUE(svc.can_step(0));
  EXPECT_EQ(svc.ledger().rejoins_cold, 1);
  EXPECT_EQ(svc.ledger().outage_examples_lost, 16);  // back — no more loss
}

// --- heartbeats -------------------------------------------------------------

TEST(MembershipHeartbeat, ReplayedBeatsAreCountedAndIgnored) {
  auto svc = make_service(base_config());
  svc.begin_round(1, 0.0);
  EXPECT_TRUE(svc.note_heartbeat(0, 1, 1.0));
  EXPECT_EQ(svc.state(0), MemberState::kActive);  // beat renews the lease
  EXPECT_FALSE(svc.note_heartbeat(0, 1, 2.0));    // duplicate
  EXPECT_FALSE(svc.note_heartbeat(0, 0, 3.0));    // hostile replay
  EXPECT_TRUE(svc.note_heartbeat(0, 2, 4.0));
  EXPECT_EQ(svc.ledger().heartbeats_fresh, 2);
  EXPECT_EQ(svc.ledger().heartbeats_stale, 2);
}

TEST(MembershipHeartbeat, IntervalGatesTheBeacon) {
  auto cfg = base_config();
  cfg.heartbeat_interval_sec = 5.0;
  auto svc = make_service(cfg);
  EXPECT_TRUE(svc.sends_heartbeat(0, 0.0));  // first beat fires immediately
  svc.note_heartbeat_sent(0, 0.0);
  EXPECT_FALSE(svc.sends_heartbeat(0, 4.9));
  EXPECT_TRUE(svc.sends_heartbeat(0, 5.0));
}

// --- update admission: strikes, quarantine, probation -----------------------

Tensor uniform_tensor(float value) { return Tensor::full(Shape{16}, value); }

MembershipConfig strict_policing() {
  auto cfg = base_config();
  cfg.norm_warmup = 2;
  cfg.norm_window = 4;
  cfg.norm_bomb_factor = 8.0;
  cfg.strikes_to_quarantine = 2;
  cfg.quarantine_rounds = 2;
  cfg.probation_readmit_prob = 1.0;  // deterministic readmission for tests
  cfg.probation_clean_steps = 2;
  return cfg;
}

TEST(MembershipAdmission, NonFinitePayloadIsRejectedEvenDuringWarmup) {
  auto svc = make_service(strict_policing());
  svc.begin_round(1, 0.0);
  Tensor bad = uniform_tensor(1.0F);
  bad.data()[3] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(svc.admit_update(0, 1, bad),
            MembershipService::Verdict::kRejectNonFinite);
  EXPECT_EQ(svc.strikes(0), 1);
  EXPECT_EQ(svc.ledger().rejected_nonfinite, 1);
}

TEST(MembershipAdmission, NormBombArmsAfterWarmupAndEscalates) {
  auto svc = make_service(strict_policing());
  svc.begin_round(1, 0.0);
  // Warmup: the first bomb-sized payload sails through (no history yet).
  EXPECT_EQ(svc.admit_update(0, 0, uniform_tensor(1.0F)),
            MembershipService::Verdict::kAccept);
  EXPECT_EQ(svc.admit_update(0, 0, uniform_tensor(1.0F)),
            MembershipService::Verdict::kAccept);
  // Armed: median RMS is 1.0, factor 8 — a 100x payload is a bomb.
  EXPECT_EQ(svc.admit_update(0, 0, uniform_tensor(100.0F)),
            MembershipService::Verdict::kRejectNormBomb);
  EXPECT_EQ(svc.strikes(0), 1);
  EXPECT_EQ(svc.state(0), MemberState::kJoining);  // one strike: not yet
  // A clean update between strikes is accepted and does NOT reset strikes.
  EXPECT_EQ(svc.admit_update(0, 0, uniform_tensor(1.0F)),
            MembershipService::Verdict::kAccept);
  EXPECT_EQ(svc.admit_update(0, 0, uniform_tensor(100.0F)),
            MembershipService::Verdict::kRejectNormBomb);
  EXPECT_EQ(svc.state(0), MemberState::kQuarantined);
  EXPECT_EQ(svc.strikes(0), 0);  // reset on entering quarantine
  EXPECT_FALSE(svc.can_step(0));
  EXPECT_EQ(svc.ledger().quarantines, 1);
  // Norm histories are per kind: the logit-grad channel is still in warmup.
  EXPECT_EQ(svc.admit_update(1, 1, uniform_tensor(100.0F)),
            MembershipService::Verdict::kAccept);
}

TEST(MembershipAdmission, QuarantineServesProbationAndClears) {
  auto svc = make_service(strict_policing());
  svc.begin_round(1, 0.0);
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(0, 0, uniform_tensor(100.0F));
  svc.admit_update(0, 0, uniform_tensor(100.0F));
  ASSERT_EQ(svc.state(0), MemberState::kQuarantined);  // until round 1+2
  svc.begin_round(2, 1.0);
  EXPECT_EQ(svc.state(0), MemberState::kQuarantined);
  svc.begin_round(3, 2.0);
  EXPECT_EQ(svc.state(0), MemberState::kQuarantined);
  svc.begin_round(4, 3.0);  // spell served; readmit_prob 1.0 readmits now
  EXPECT_EQ(svc.state(0), MemberState::kActive);
  EXPECT_TRUE(svc.on_probation(0));
  EXPECT_EQ(svc.ledger().readmissions, 1);
  // Two clean protocol steps wipe the slate.
  svc.note_step_completed(0, 3.5);
  EXPECT_TRUE(svc.on_probation(0));
  svc.note_step_completed(0, 3.6);
  EXPECT_FALSE(svc.on_probation(0));
  EXPECT_EQ(svc.ledger().probation_clears, 1);
}

TEST(MembershipAdmission, ProbationStrikeRequarantinesWithDoubledSpell) {
  auto svc = make_service(strict_policing());
  svc.begin_round(1, 0.0);
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(0, 0, uniform_tensor(100.0F));
  svc.admit_update(0, 0, uniform_tensor(100.0F));
  svc.begin_round(4, 3.0);  // readmitted on probation (spell was 2 rounds)
  ASSERT_TRUE(svc.on_probation(0));
  // One strike on probation: straight back in, spell doubled to 4 rounds.
  EXPECT_EQ(svc.admit_update(0, 0, uniform_tensor(100.0F)),
            MembershipService::Verdict::kRejectNormBomb);
  EXPECT_EQ(svc.state(0), MemberState::kQuarantined);
  EXPECT_EQ(svc.ledger().quarantines, 2);
  for (std::int64_t r = 5; r <= 8; ++r) {
    svc.begin_round(r, static_cast<double>(r));
    EXPECT_EQ(svc.state(0), MemberState::kQuarantined) << "round " << r;
  }
  svc.begin_round(9, 9.0);  // 4-round spell (rounds 5-8) served
  EXPECT_EQ(svc.state(0), MemberState::kActive);
}

TEST(MembershipAdmission, QuarantinedJoinRequestIsRefusedBeforeMutation) {
  auto svc = make_service(strict_policing());
  svc.begin_round(1, 0.0);
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(0, 0, uniform_tensor(100.0F));
  svc.admit_update(0, 0, uniform_tensor(100.0F));
  ASSERT_EQ(svc.state(0), MemberState::kQuarantined);
  EXPECT_THROW(svc.note_join_request(0, RejoinMode::kWarm, 1.0),
               ProtocolError);
  EXPECT_EQ(svc.state(0), MemberState::kQuarantined);  // untouched
}

TEST(MembershipAdmission, ProbationDrawsAreSeededDeterministic) {
  auto cfg = strict_policing();
  cfg.probation_readmit_prob = 0.5;
  const auto run = [&cfg] {
    auto svc = make_service(cfg);
    svc.begin_round(1, 0.0);
    svc.admit_update(0, 0, uniform_tensor(1.0F));
    svc.admit_update(0, 0, uniform_tensor(1.0F));
    svc.admit_update(0, 0, uniform_tensor(100.0F));
    svc.admit_update(0, 0, uniform_tensor(100.0F));
    std::vector<int> states;
    for (std::int64_t r = 2; r <= 20; ++r) {
      svc.begin_round(r, static_cast<double>(r));
      states.push_back(static_cast<int>(svc.state(0)));
    }
    return states;
  };
  EXPECT_EQ(run(), run());
}

// --- round closing ----------------------------------------------------------

TEST(MembershipRounds, BelowQuorumVoidsTheRound) {
  auto cfg = base_config();
  cfg.min_quorum = 2;
  auto svc = make_service(cfg, 3);
  svc.begin_round(1, 0.0);
  EXPECT_FALSE(svc.end_round(1, 2));
  EXPECT_TRUE(svc.end_round(2, 1));
  EXPECT_EQ(svc.ledger().void_rounds, 1);
  svc.note_deadline_miss(2);
  EXPECT_EQ(svc.ledger().deadline_misses, 1);
}

// --- RMS norm ---------------------------------------------------------------

TEST(MembershipNorm, RmsIsBatchSizeInvariant) {
  EXPECT_DOUBLE_EQ(core::update_rms_norm(Tensor::full(Shape{4}, 2.0F)), 2.0);
  EXPECT_DOUBLE_EQ(core::update_rms_norm(Tensor::full(Shape{64}, 2.0F)), 2.0);
  EXPECT_DOUBLE_EQ(core::update_rms_norm(Tensor(Shape{0})), 0.0);
  Tensor inf = Tensor::full(Shape{4}, 1.0F);
  inf.data()[2] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(std::isfinite(core::update_rms_norm(inf)));
}

// --- state roundtrip --------------------------------------------------------

TEST(MembershipState, SaveLoadIsBitwise) {
  ChurnPlan plan;
  plan.crashes.push_back(CrashEvent{1, 3, 25.0, RejoinMode::kCold});
  auto svc = make_service(strict_policing(), 3, plan);
  svc.begin_round(1, 0.0);
  svc.note_heartbeat(0, 1, 0.5);
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(0, 0, uniform_tensor(1.0F));
  svc.admit_update(1, 0, uniform_tensor(100.0F));  // strike for platform 1
  svc.begin_round(2, 1.0);
  svc.begin_round(3, 2.0);  // platform 1 crashes (offline 25s)

  BufferWriter w1;
  svc.save_state(w1);
  const auto bytes = w1.take();

  auto restored = make_service(strict_policing(), 3, plan);
  BufferReader r(bytes);
  restored.load_state(r);
  EXPECT_TRUE(r.exhausted());
  BufferWriter w2;
  restored.save_state(w2);
  EXPECT_EQ(bytes, w2.take());
  EXPECT_EQ(restored.state(0), svc.state(0));
  EXPECT_EQ(restored.strikes(1), 1);
  EXPECT_FALSE(restored.online(1));
  EXPECT_EQ(restored.ledger().fingerprint(), svc.ledger().fingerprint());
  // The restored service continues identically.
  svc.begin_round(4, 30.0);
  restored.begin_round(4, 30.0);
  EXPECT_EQ(restored.state(1), svc.state(1));
  EXPECT_TRUE(restored.needs_rejoin(1));
}

TEST(MembershipState, LoadRejectsRosterMismatchAndBadBytes) {
  auto svc = make_service(base_config(), 2);
  BufferWriter w;
  svc.save_state(w);
  const auto bytes = w.take();

  auto other = make_service(base_config(), 3);
  BufferReader r1(bytes);
  EXPECT_THROW(other.load_state(r1), SerializationError);

  auto mutated = bytes;
  mutated[4] = 0xEE;  // first record's lifecycle state byte
  auto same = make_service(base_config(), 2);
  BufferReader r2(mutated);
  EXPECT_THROW(same.load_state(r2), SerializationError);
}

}  // namespace
}  // namespace splitmed
