// Behavioural tests for nn layers: output shapes, forward semantics,
// train/eval mode differences. Gradient correctness lives in
// nn_gradcheck_test.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/dropout.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/init.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/pool.hpp"
#include "src/nn/residual.hpp"
#include "src/nn/sequential.hpp"
#include "src/tensor/ops.hpp"

namespace splitmed {
namespace {

TEST(Init, HeNormalStddev) {
  Rng rng(1);
  const Tensor w = nn::he_normal(Shape{10000}, 50, rng);
  double sq = 0.0;
  for (const float v : w.data()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sq / 10000.0), std::sqrt(2.0 / 50.0), 0.01);
}

TEST(Init, XavierUniformBounds) {
  Rng rng(2);
  const Tensor w = nn::xavier_uniform(Shape{1000}, 30, 70, rng);
  const float limit = std::sqrt(6.0F / 100.0F);
  for (const float v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(3);
  nn::Linear lin(2, 2, rng);
  lin.weight().value = Tensor(Shape{2, 2}, {1, 2, 3, 4});
  lin.bias().value = Tensor(Shape{2}, {10, 20});
  const Tensor x(Shape{1, 2}, {1, 1});
  const Tensor y = lin.forward(x, true);
  EXPECT_EQ(y.at({0, 0}), 13.0F);  // 1*1+2*1+10
  EXPECT_EQ(y.at({0, 1}), 27.0F);  // 3*1+4*1+20
}

TEST(Linear, RejectsWrongInput) {
  Rng rng(3);
  nn::Linear lin(4, 2, rng);
  EXPECT_THROW(lin.forward(Tensor(Shape{1, 5}), true), InvalidArgument);
  EXPECT_THROW(lin.forward(Tensor(Shape{4}), true), InvalidArgument);
}

TEST(Linear, OutputShapeAndParamCount) {
  Rng rng(3);
  nn::Linear lin(4, 3, rng);
  EXPECT_EQ(lin.output_shape(Shape{7, 4}), Shape({7, 3}));
  EXPECT_EQ(lin.parameter_count(), 4 * 3 + 3);
  EXPECT_EQ(lin.name(), "Linear(4->3)");
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(4);
  nn::Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.parameters()[0]->value = Tensor(Shape{1, 1}, {1.0F});
  conv.parameters()[1]->value = Tensor(Shape{1}, {0.0F});
  Rng xr(5);
  const Tensor x = Tensor::normal(Shape{2, 1, 4, 4}, xr);
  const Tensor y = conv.forward(x, true);
  EXPECT_LT(ops::max_abs_diff(x, y), 1e-6F);
}

TEST(Conv2d, KnownSmallConvolution) {
  Rng rng(4);
  nn::Conv2d conv(1, 1, 2, 1, 0, rng);
  // Kernel [[1,2],[3,4]], bias 1.
  conv.parameters()[0]->value = Tensor(Shape{1, 4}, {1, 2, 3, 4});
  conv.parameters()[1]->value = Tensor(Shape{1}, {1.0F});
  const Tensor x(Shape{1, 1, 2, 2}, {1, 1, 1, 1});
  const Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_EQ(y[0], 11.0F);  // 1+2+3+4 + bias
}

TEST(Conv2d, OutputShapeWithStridePad) {
  Rng rng(4);
  nn::Conv2d conv(3, 8, 3, 2, 1, rng);
  EXPECT_EQ(conv.output_shape(Shape{5, 3, 32, 32}), Shape({5, 8, 16, 16}));
  EXPECT_EQ(conv.parameter_count(), 8 * 27 + 8);
}

TEST(Conv2d, RejectsWrongChannels) {
  Rng rng(4);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 4, 8, 8}), true),
               InvalidArgument);
}

TEST(ReLU, ClampsNegatives) {
  nn::ReLU relu;
  const Tensor x(Shape{4}, {-2, -0.5F, 0, 3});
  const Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 0.0F);
  EXPECT_EQ(y[2], 0.0F);
  EXPECT_EQ(y[3], 3.0F);
}

TEST(ReLU, BackwardMasks) {
  nn::ReLU relu;
  const Tensor x(Shape{3}, {-1, 2, -3});
  relu.forward(x, true);
  const Tensor g(Shape{3}, {10, 20, 30});
  const Tensor gin = relu.backward(g);
  EXPECT_EQ(gin[0], 0.0F);
  EXPECT_EQ(gin[1], 20.0F);
  EXPECT_EQ(gin[2], 0.0F);
}

TEST(Activations, TanhSigmoidRanges) {
  nn::Tanh tanh_layer;
  nn::Sigmoid sig;
  Rng rng(6);
  const Tensor x = Tensor::normal(Shape{64}, rng, 0.0F, 3.0F);
  const Tensor ty = tanh_layer.forward(x, true);
  const Tensor sy = sig.forward(x, true);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_GT(ty[i], -1.0F);
    EXPECT_LT(ty[i], 1.0F);
    EXPECT_GT(sy[i], 0.0F);
    EXPECT_LT(sy[i], 1.0F);
    EXPECT_NEAR(ty[i], std::tanh(x[i]), 1e-5F);
  }
}

TEST(MaxPool2d, SelectsWindowMaxima) {
  nn::MaxPool2d pool(2);
  const Tensor x(Shape{1, 1, 2, 4}, {1, 5, 2, 0,
                                     3, 4, 8, 7});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_EQ(y[0], 5.0F);
  EXPECT_EQ(y[1], 8.0F);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  nn::MaxPool2d pool(2);
  const Tensor x(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
  pool.forward(x, true);
  const Tensor g(Shape{1, 1, 1, 1}, {5.0F});
  const Tensor gin = pool.backward(g);
  EXPECT_EQ(gin[0], 0.0F);
  EXPECT_EQ(gin[1], 5.0F);
  EXPECT_EQ(gin[2], 0.0F);
  EXPECT_EQ(gin[3], 0.0F);
}

TEST(MaxPool2d, WindowTooLargeThrows) {
  nn::MaxPool2d pool(4);
  EXPECT_THROW(pool.output_shape(Shape{1, 1, 2, 2}), InvalidArgument);
}

TEST(GlobalAvgPool, AveragesPlanes) {
  nn::GlobalAvgPool gap;
  const Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5F);
  EXPECT_FLOAT_EQ(y[1], 10.0F);
}


TEST(AvgPool2d, AveragesWindows) {
  nn::AvgPool2d pool(2);
  const Tensor x(Shape{1, 1, 2, 4}, {1, 5, 2, 0,
                                     3, 7, 8, 6});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 4.0F);
  EXPECT_FLOAT_EQ(y[1], 4.0F);
}

TEST(AvgPool2d, BackwardSpreadsUniformly) {
  nn::AvgPool2d pool(2);
  const Tensor x(Shape{1, 1, 2, 2});
  pool.forward(x, true);
  const Tensor g(Shape{1, 1, 1, 1}, {8.0F});
  const Tensor gin = pool.backward(g);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gin[i], 2.0F);
}

TEST(AvgPool2d, WindowTooLargeThrows) {
  nn::AvgPool2d pool(3);
  EXPECT_THROW(pool.output_shape(Shape{1, 1, 2, 2}), InvalidArgument);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  nn::BatchNorm2d bn(2);
  Rng rng(7);
  const Tensor x = Tensor::normal(Shape{8, 2, 4, 4}, rng, 3.0F, 2.0F);
  const Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1 after normalization with unit gamma.
  const std::int64_t hw = 16, batch = 8;
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t i = 0; i < hw; ++i) {
        const float v = y[(b * 2 + c) * hw + i];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    const double n = static_cast<double>(batch * hw);
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  nn::BatchNorm2d bn(1);
  Rng rng(8);
  // Feed several batches to converge running stats toward N(5, 4).
  for (int i = 0; i < 200; ++i) {
    const Tensor x = Tensor::normal(Shape{4, 1, 4, 4}, rng, 5.0F, 2.0F);
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0F, 0.3F);
  EXPECT_NEAR(bn.running_var()[0], 4.0F, 0.6F);
  // Eval on a constant input: output should be (5-mean)/sqrt(var) ~ 0.
  const Tensor x = Tensor::full(Shape{1, 1, 2, 2}, 5.0F);
  const Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 0.0F, 0.2F);
}

TEST(BatchNorm2d, BackwardBeforeAnyForwardThrows) {
  nn::BatchNorm2d bn(1);
  EXPECT_THROW(bn.backward(Tensor(Shape{1, 1, 2, 2})), InvalidArgument);
}

TEST(BatchNorm2d, EvalBackwardIsFrozenAffine) {
  nn::BatchNorm2d bn(1);
  Rng rng(30);
  // Converge running stats so eval normalization is non-trivial.
  for (int i = 0; i < 50; ++i) {
    bn.forward(Tensor::normal(Shape{4, 1, 3, 3}, rng, 2.0F, 3.0F), true);
  }
  bn.zero_grad();
  const Tensor x = Tensor::normal(Shape{2, 1, 3, 3}, rng);
  bn.forward(x, false);
  const Tensor g = Tensor::ones(Shape{2, 1, 3, 3});
  const Tensor gin = bn.backward(g);
  // dx = gamma / sqrt(rv + eps) * g — constant per channel.
  const float scale =
      1.0F / std::sqrt(bn.running_var()[0] + 1e-5F);
  for (std::int64_t i = 0; i < gin.numel(); ++i) {
    EXPECT_NEAR(gin[i], scale, 1e-5F);
  }
  // dbeta = sum g = 18.
  EXPECT_NEAR(bn.parameters()[1]->grad[0], 18.0F, 1e-4F);
}

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(9);
  nn::Dropout drop(0.5F, rng);
  Rng xr(10);
  const Tensor x = Tensor::normal(Shape{64}, xr);
  const Tensor y = drop.forward(x, false);
  EXPECT_EQ(ops::max_abs_diff(x, y), 0.0F);
}

TEST(Dropout, TrainModeDropsAndRescales) {
  Rng rng(11);
  nn::Dropout drop(0.5F, rng);
  const Tensor x = Tensor::ones(Shape{10000});
  const Tensor y = drop.forward(x, true);
  std::int64_t zeros = 0;
  for (const float v : y.data()) {
    if (v == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0F);  // kept values scaled by 1/(1-p)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(12);
  nn::Dropout drop(0.3F, rng);
  const Tensor x = Tensor::ones(Shape{128});
  const Tensor y = drop.forward(x, true);
  const Tensor gin = drop.backward(Tensor::ones(Shape{128}));
  // grad passes exactly where the forward passed.
  EXPECT_EQ(ops::max_abs_diff(gin, y), 0.0F);
}

TEST(Dropout, RejectsBadProbability) {
  Rng rng(13);
  EXPECT_THROW(nn::Dropout(1.0F, rng), InvalidArgument);
  EXPECT_THROW(nn::Dropout(-0.1F, rng), InvalidArgument);
}

TEST(Flatten, CollapsesTrailingDims) {
  nn::Flatten flat;
  const Tensor x(Shape{2, 3, 4});
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 12}));
  const Tensor g = flat.backward(Tensor(Shape{2, 12}));
  EXPECT_EQ(g.shape(), Shape({2, 3, 4}));
}

TEST(Sequential, ChainsLayersAndShapes) {
  Rng rng(14);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::MaxPool2d>(2);
  seq.emplace<nn::Flatten>();
  seq.emplace<nn::Linear>(4 * 4 * 4, 5, rng);
  EXPECT_EQ(seq.size(), 5U);
  EXPECT_EQ(seq.output_shape(Shape{2, 1, 8, 8}), Shape({2, 5}));
  const Tensor y = seq.forward(Tensor(Shape{2, 1, 8, 8}), true);
  EXPECT_EQ(y.shape(), Shape({2, 5}));
  EXPECT_EQ(seq.parameters().size(), 4U);  // conv W/b + linear W/b
}

TEST(Sequential, ActivationShapesListsEveryStage) {
  Rng rng(15);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(1, 2, 3, 1, 1, rng);
  seq.emplace<nn::MaxPool2d>(2);
  const auto shapes = seq.activation_shapes(Shape{1, 1, 8, 8});
  ASSERT_EQ(shapes.size(), 3U);
  EXPECT_EQ(shapes[0], Shape({1, 1, 8, 8}));
  EXPECT_EQ(shapes[1], Shape({1, 2, 8, 8}));
  EXPECT_EQ(shapes[2], Shape({1, 2, 4, 4}));
}

TEST(Sequential, ExtractSplitsInPlace) {
  Rng rng(16);
  nn::Sequential seq;
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Tanh>();
  seq.emplace<nn::Sigmoid>();
  nn::Sequential front = seq.extract(0, 1);
  EXPECT_EQ(front.size(), 1U);
  EXPECT_EQ(seq.size(), 2U);
  EXPECT_EQ(front.layer(0).name(), "ReLU");
  EXPECT_EQ(seq.layer(0).name(), "Tanh");
}

TEST(Sequential, ExtractValidatesRange) {
  nn::Sequential seq;
  seq.emplace<nn::ReLU>();
  EXPECT_THROW(seq.extract(0, 2), InvalidArgument);
  EXPECT_THROW(seq.extract(2, 1), InvalidArgument);
}

TEST(ResidualBlock, IdentityShapeAndProjection) {
  Rng rng(17);
  nn::ResidualBlock same(8, 8, 1, rng);
  EXPECT_EQ(same.output_shape(Shape{2, 8, 8, 8}), Shape({2, 8, 8, 8}));
  EXPECT_EQ(same.parameters().size(), 8U);  // 2x(conv W/b) + 2x(bn g/b)

  nn::ResidualBlock proj(8, 16, 2, rng);
  EXPECT_EQ(proj.output_shape(Shape{2, 8, 8, 8}), Shape({2, 16, 4, 4}));
  EXPECT_EQ(proj.parameters().size(), 12U);  // + projection conv/bn
}

TEST(ResidualBlock, ForwardRunsAndIsNonNegative) {
  Rng rng(18);
  nn::ResidualBlock block(4, 4, 1, rng);
  Rng xr(19);
  const Tensor x = Tensor::normal(Shape{2, 4, 6, 6}, xr);
  const Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  for (const float v : y.data()) EXPECT_GE(v, 0.0F);  // final ReLU
}

}  // namespace
}  // namespace splitmed
