// Execution-planner tests: chain recognition, fusion legality (training BN
// must NOT fuse), the lifetime interval coloring (no two overlapping
// intervals may share a slab), and — the load-bearing contract — bitwise
// equality of fused and unfused execution across thread counts. Run twice
// by ctest: once with the dispatched ISA and once pinned to the base
// micro-kernel (plan_test_base_isa), mirroring gemm_test.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <tuple>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/plan.hpp"
#include "src/nn/pool.hpp"
#include "src/nn/residual.hpp"
#include "src/nn/sequential.hpp"
#include "src/tensor/workspace.hpp"

namespace splitmed::nn {
namespace {

// Restores planner + pool defaults on scope exit so toggles don't leak
// between tests (the planner is process-global state).
class PlannerGuard {
 public:
  PlannerGuard() = default;
  ~PlannerGuard() {
    set_planner_enabled(true);
    set_global_threads(0);
  }
  PlannerGuard(const PlannerGuard&) = delete;
  PlannerGuard& operator=(const PlannerGuard&) = delete;
};

bool bitwise_equal(std::span<const float> x, std::span<const float> y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0);
}

Tensor random_input(const Shape& shape, std::uint64_t seed) {
  Tensor t(shape);
  Rng rng(seed);
  for (auto& v : t.data()) v = rng.normal();
  return t;
}

// Runs a few training batches so the BN running statistics are non-trivial
// (fresh mean=0/var=1 would make the BN epilogue nearly an identity map and
// hide indexing bugs).
void warm_up(Sequential& seq, const Shape& in_shape) {
  for (int i = 0; i < 3; ++i) {
    (void)seq.forward(random_input(in_shape, 900 + i), /*training=*/true);
  }
}

TEST(PlanBuild, RecognizesConvAndLinearChains) {
  Rng rng(7);
  Sequential seq;
  seq.emplace<Conv2d>(3, 8, 3, 1, 1, rng);   // ┐
  seq.emplace<BatchNorm2d>(8);               // ├ kConvBnRelu
  seq.emplace<ReLU>();                       // ┘
  seq.emplace<Conv2d>(8, 8, 3, 1, 1, rng);   // ┐ kConvRelu
  seq.emplace<ReLU>();                       // ┘
  seq.emplace<MaxPool2d>(2);                 // passthrough
  seq.emplace<Conv2d>(8, 4, 3, 1, 1, rng);   // ┐ kConvBn
  seq.emplace<BatchNorm2d>(4);               // ┘
  seq.emplace<Flatten>();                    // passthrough
  seq.emplace<Linear>(4 * 4 * 4, 16, rng);   // ┐ kLinearRelu
  seq.emplace<ReLU>();                       // ┘
  seq.emplace<Linear>(16, 10, rng);          // passthrough

  const auto& groups = seq.plan().groups();
  ASSERT_EQ(groups.size(), 7U);
  EXPECT_EQ(groups[0].kind, FuseKind::kConvBnRelu);
  EXPECT_EQ(groups[1].kind, FuseKind::kConvRelu);
  EXPECT_EQ(groups[2].kind, FuseKind::kPassthrough);
  EXPECT_EQ(groups[3].kind, FuseKind::kConvBn);
  EXPECT_EQ(groups[4].kind, FuseKind::kPassthrough);
  EXPECT_EQ(groups[5].kind, FuseKind::kLinearRelu);
  EXPECT_EQ(groups[6].kind, FuseKind::kPassthrough);
  EXPECT_TRUE(seq.plan().has_fusion());

  // Group spans must tile the layer list exactly.
  std::size_t expect_begin = 0;
  for (const auto& g : groups) {
    EXPECT_EQ(g.begin, expect_begin);
    EXPECT_GT(g.end, g.begin);
    expect_begin = g.end;
  }
  EXPECT_EQ(expect_begin, seq.size());
}

TEST(PlanBuild, BnWithMismatchedChannelsDoesNotFuse) {
  // A BN whose channel count differs from the producing conv's output is
  // not this conv's tail (such a model fails at forward anyway) — the
  // recognizer must leave both as passthrough rather than build an epilogue
  // indexing out of bounds.
  Rng rng(11);
  Sequential seq;
  seq.emplace<Conv2d>(3, 8, 3, 1, 1, rng);
  seq.emplace<BatchNorm2d>(4);
  const auto& groups = seq.plan().groups();
  ASSERT_EQ(groups.size(), 2U);
  EXPECT_EQ(groups[0].kind, FuseKind::kPassthrough);
  EXPECT_EQ(groups[1].kind, FuseKind::kPassthrough);
}

TEST(PlanBuild, StructuralEditInvalidatesPlan) {
  Rng rng(13);
  Sequential seq;
  seq.emplace<Linear>(6, 6, rng);
  seq.emplace<ReLU>();
  ASSERT_EQ(seq.plan().groups().size(), 1U);
  EXPECT_EQ(seq.plan().groups()[0].kind, FuseKind::kLinearRelu);
  // Appending splits nothing retroactively, but the plan must rebuild and
  // cover the new layer.
  seq.emplace<Linear>(6, 2, rng);
  ASSERT_EQ(seq.plan().groups().size(), 2U);
  EXPECT_EQ(seq.plan().groups()[1].kind, FuseKind::kPassthrough);
  // extract() moves layers out; a stale plan would dangle.
  Sequential tail = seq.extract(2, 3);
  ASSERT_EQ(seq.plan().groups().size(), 1U);
  ASSERT_EQ(tail.plan().groups().size(), 1U);
}

TEST(PlanColoring, StraightChainPingPongsBetweenTwoSlabs) {
  // A depth-N chain of intermediates [i, i+1] needs exactly 2 slabs no
  // matter how deep — the heart of the depth-flat memory claim.
  std::vector<LifeInterval> chain;
  for (std::int64_t i = 0; i < 16; ++i) {
    chain.push_back({i, i + 1, 100 + i});
  }
  const SlabAssignment sa = color_intervals(chain);
  ASSERT_EQ(sa.color.size(), chain.size());
  EXPECT_EQ(sa.slab_floats.size(), 2U);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(sa.color[i], i % 2) << "interval " << i;
  }
  // Each slab is sized to its largest occupant.
  EXPECT_EQ(sa.slab_floats[0], 100 + 14);
  EXPECT_EQ(sa.slab_floats[1], 100 + 15);
}

TEST(PlanColoring, OverlappingIntervalsNeverShareASlab) {
  // Closed-interval semantics: [i, i+1] and [i+1, i+2] DO conflict (both
  // live while group i+1 runs). Sweep a mix of short and long lifetimes and
  // assert the invariant pairwise — an aliasing bug here silently corrupts
  // activations, so this is the safety net for any future coloring change.
  const std::vector<LifeInterval> ivs = {
      {0, 1, 10}, {1, 2, 20}, {1, 5, 30}, {2, 3, 40},
      {3, 4, 50}, {4, 6, 60}, {6, 7, 70},
  };
  const SlabAssignment sa = color_intervals(ivs);
  ASSERT_EQ(sa.color.size(), ivs.size());
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    for (std::size_t j = i + 1; j < ivs.size(); ++j) {
      const bool overlap = ivs[i].def <= ivs[j].last_use &&
                           ivs[j].def <= ivs[i].last_use;
      if (overlap) {
        EXPECT_NE(sa.color[i], sa.color[j])
            << "intervals " << i << " and " << j << " overlap but share slab "
            << sa.color[i];
      }
    }
    // Slab must be large enough for every occupant.
    EXPECT_GE(sa.slab_floats[sa.color[i]], ivs[i].floats);
  }
  // The long-lived [1,5] interval forces a third slab while [2,3]/[3,4]
  // run; the greedy coloring must not need more than that.
  EXPECT_EQ(sa.slab_floats.size(), 3U);
}

TEST(PlanTraining, TrainingBnStaysUnfused) {
  // Training-mode BN needs batch statistics of the conv output — fusing it
  // would compute statistics of a tensor that no longer exists. The planned
  // forward must run conv→bn→relu per-layer under training, and the BN
  // running statistics must advance exactly as in the legacy path.
  PlannerGuard guard;
  Rng rng(17);
  Sequential seq;
  seq.emplace<Conv2d>(2, 4, 3, 1, 1, rng);
  seq.emplace<BatchNorm2d>(4);
  seq.emplace<ReLU>();
  const Shape in_shape({3, 2, 6, 6});

  set_planner_enabled(true);
  const Tensor x = random_input(in_shape, 21);
  const Tensor out_planned = seq.forward(x, /*training=*/true);
  const auto& grp = seq.plan().groups();
  ASSERT_EQ(grp.size(), 1U);
  EXPECT_EQ(grp[0].kind, FuseKind::kConvBnRelu);
  EXPECT_FALSE(grp[0].ran_fused) << "training BN must not run fused";
  const Tensor mean_planned =
      dynamic_cast<BatchNorm2d&>(seq.layer(1)).running_mean();

  // Identical twin network, planner off: same forward bytes, same stats.
  Rng rng2(17);
  Sequential ref;
  ref.emplace<Conv2d>(2, 4, 3, 1, 1, rng2);
  ref.emplace<BatchNorm2d>(4);
  ref.emplace<ReLU>();
  set_planner_enabled(false);
  const Tensor out_ref = ref.forward(x, /*training=*/true);
  EXPECT_TRUE(bitwise_equal(out_planned.data(), out_ref.data()));
  EXPECT_TRUE(bitwise_equal(
      mean_planned.data(),
      dynamic_cast<BatchNorm2d&>(ref.layer(1)).running_mean().data()));
}

TEST(PlanTraining, FusedTrainingStepIsBitwiseAcrossThreads) {
  // The tentpole contract for the training path: with conv→relu and
  // linear→relu fused (epilogue write-back forward, output-masked dReLU
  // backward), the forward output AND every parameter gradient are bitwise
  // identical to the unfused per-layer path — at 1, 2, and 8 threads.
  PlannerGuard guard;
  Rng rng(29);
  Sequential seq;
  seq.emplace<Conv2d>(2, 4, 3, 1, 1, rng);
  seq.emplace<ReLU>();
  seq.emplace<Flatten>();
  seq.emplace<Linear>(4 * 5 * 5, 16, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(16, 3, rng);
  ASSERT_TRUE(seq.plan().has_fusion());
  const Shape in_shape({4, 2, 5, 5});
  const Tensor x = random_input(in_shape, 31);
  const Tensor g = random_input(Shape({4, 3}), 37);

  for (const int threads : {1, 2, 8}) {
    set_global_threads(threads);
    const auto run = [&](bool planned) {
      set_planner_enabled(planned);
      for (Parameter* p : seq.parameters()) p->zero_grad();
      const Tensor out = seq.forward(x, /*training=*/true);
      EXPECT_EQ(seq.last_forward_planned(), planned);
      const Tensor gin = seq.backward(g);
      std::vector<std::vector<float>> grads;
      for (Parameter* p : seq.parameters()) {
        const auto d = p->grad.data();
        grads.emplace_back(d.begin(), d.end());
      }
      return std::tuple{out, gin, grads};
    };
    const auto [out_f, gin_f, grads_f] = run(true);
    const auto [out_u, gin_u, grads_u] = run(false);
    EXPECT_TRUE(bitwise_equal(out_f.data(), out_u.data()))
        << "forward, threads=" << threads;
    EXPECT_TRUE(bitwise_equal(gin_f.data(), gin_u.data()))
        << "grad input, threads=" << threads;
    ASSERT_EQ(grads_f.size(), grads_u.size());
    for (std::size_t i = 0; i < grads_f.size(); ++i) {
      EXPECT_TRUE(bitwise_equal(grads_f[i], grads_u[i]))
          << "param grad " << i << ", threads=" << threads;
    }
  }
}

TEST(PlanInfer, InferMatchesEvalForwardBitwise) {
  // The inference path adds what training cannot have: fused eval-mode BN
  // and slab-chained intermediates. Still bitwise identical to the legacy
  // per-layer forward(x, false), across thread counts.
  PlannerGuard guard;
  Rng rng(41);
  Sequential seq;
  seq.emplace<Conv2d>(3, 8, 3, 1, 1, rng);
  seq.emplace<BatchNorm2d>(8);
  seq.emplace<ReLU>();
  seq.emplace<Conv2d>(8, 8, 3, 1, 1, rng);
  seq.emplace<ReLU>();
  seq.emplace<MaxPool2d>(2);
  seq.emplace<Conv2d>(8, 4, 3, 1, 1, rng);
  seq.emplace<BatchNorm2d>(4);
  seq.emplace<Flatten>();
  seq.emplace<Linear>(4 * 4 * 4, 16, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(16, 10, rng);
  const Shape in_shape({2, 3, 8, 8});
  warm_up(seq, in_shape);

  const Tensor x = random_input(in_shape, 43);
  for (const int threads : {1, 2, 8}) {
    set_global_threads(threads);
    set_planner_enabled(false);
    const Tensor ref = seq.forward(x, /*training=*/false);
    set_planner_enabled(true);
    const Tensor fused = seq.infer(x);
    EXPECT_EQ(fused.shape(), ref.shape());
    EXPECT_TRUE(bitwise_equal(fused.data(), ref.data()))
        << "threads=" << threads;
  }
}

TEST(PlanInfer, ResidualInferMatchesForwardBitwise) {
  // Both residual variants: identity skip and 1x1 projection skip. The
  // fused join must reproduce ops::add + in-place ReLU exactly.
  PlannerGuard guard;
  Rng rng(47);
  ResidualBlock plain(4, 4, 1, rng);
  ResidualBlock proj(4, 8, 2, rng);
  const Shape in_shape({2, 4, 6, 6});
  // Warm the running stats through the training path.
  for (int i = 0; i < 3; ++i) {
    (void)plain.forward(random_input(in_shape, 700 + i), true);
    (void)proj.forward(random_input(in_shape, 800 + i), true);
  }
  const Tensor x = random_input(in_shape, 53);
  for (const int threads : {1, 2, 8}) {
    set_global_threads(threads);
    set_planner_enabled(false);
    const Tensor ref_plain = plain.forward(x, false);
    const Tensor ref_proj = proj.forward(x, false);
    set_planner_enabled(true);
    const Tensor fused_plain = plain.infer(x);
    const Tensor fused_proj = proj.infer(x);
    EXPECT_TRUE(bitwise_equal(fused_plain.data(), ref_plain.data()))
        << "identity skip, threads=" << threads;
    EXPECT_TRUE(bitwise_equal(fused_proj.data(), ref_proj.data()))
        << "projection skip, threads=" << threads;
  }
}

TEST(PlanInfer, PeakWorkspaceIsFlatInDepth) {
  // The pass-2 claim: chained fused groups ping-pong between 2 lifetime-
  // colored slabs, so the peak arena footprint of an inference step must
  // not grow with chain depth. Measured with the step-peak watermark the
  // planner reports through `splitmed_workspace_step_peak_bytes`.
  PlannerGuard guard;
  set_global_threads(1);
  set_planner_enabled(true);
  const Shape in_shape({2, 4, 12, 12});
  const auto peak_at_depth = [&](int depth) {
    Rng rng(59);
    Sequential seq;
    for (int i = 0; i < depth; ++i) {
      seq.emplace<Conv2d>(4, 4, 3, 1, 1, rng);
      seq.emplace<ReLU>();
    }
    const Tensor x = random_input(in_shape, 61);
    (void)seq.infer(x);  // warm the arena to its high-water mark
    ws::reset_step_peak();
    (void)seq.infer(x);
    return ws::global_step_peak_bytes();
  };
  // Depth 2 has a single chained intermediate (1 slab); from depth 4 on the
  // coloring ping-pongs between exactly 2 slabs, so the footprint must stop
  // moving: depth 16 holds the same 2 slabs + per-conv scratch as depth 4.
  const std::size_t p4 = peak_at_depth(4);
  const std::size_t p16 = peak_at_depth(16);
  EXPECT_GT(p4, 0U);
  EXPECT_EQ(p16, p4) << "peak workspace grew with depth";
}

TEST(PlanInfer, PlannerOffInferStillMatches) {
  // infer() must be safe (and identical) with the planner disabled — it
  // falls back to the per-layer eval loop.
  PlannerGuard guard;
  Rng rng(67);
  Sequential seq;
  seq.emplace<Linear>(8, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2, rng);
  const Tensor x = random_input(Shape({3, 8}), 71);
  set_planner_enabled(false);
  const Tensor a = seq.infer(x);
  const Tensor b = seq.forward(x, false);
  EXPECT_TRUE(bitwise_equal(a.data(), b.data()));
}

}  // namespace
}  // namespace splitmed::nn
