// Integration tests for core::SplitTrainer: learning progress, determinism,
// byte budgets, imbalance policy, and the L1-sync extension.
#include <gtest/gtest.h>

#include "src/common/thread_pool.hpp"
#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/data/synthetic_medical.hpp"
#include "src/models/factory.hpp"

namespace splitmed {
namespace {

data::SyntheticCifar make_dataset(std::int64_t n, std::uint64_t seed = 42) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = n;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.1F;
  opt.seed = seed;
  return data::SyntheticCifar(opt);
}

core::ModelBuilder builder() {
  return [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
}

core::SplitConfig base_config() {
  core::SplitConfig cfg;
  cfg.total_batch = 16;
  cfg.rounds = 40;
  cfg.eval_every = 20;
  // Gentle settings: the server applies K sequential updates per round, so
  // hot learning rates diverge (covered by the Fig. 4 benches instead).
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  return cfg;
}

TEST(SplitTrainer, LearnsAboveChance) {
  const auto train = make_dataset(128);
  const auto test = make_dataset(32, /*seed=*/42);  // same distribution
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 4, prng);
  core::SplitTrainer trainer(builder(), train, partition, test,
                             base_config());
  const auto report = trainer.run();
  EXPECT_EQ(report.protocol, "split");
  EXPECT_EQ(report.steps_completed, 40);
  // 4 classes -> chance 25%; the synthetic task is easy.
  EXPECT_GT(report.final_accuracy, 0.5);
  // Loss decreased from the first to the last eval point.
  EXPECT_LT(report.curve.back().train_loss, report.curve.front().train_loss);
}

TEST(SplitTrainer, DeterministicAcrossRuns) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  Rng p1(3), p2(3);
  const auto part1 = data::partition_iid(train.size(), 3, p1);
  const auto part2 = data::partition_iid(train.size(), 3, p2);
  auto cfg = base_config();
  cfg.rounds = 10;
  cfg.eval_every = 5;
  core::SplitTrainer t1(builder(), train, part1, test, cfg);
  core::SplitTrainer t2(builder(), train, part2, test, cfg);
  const auto r1 = t1.run();
  const auto r2 = t2.run();
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_EQ(r1.curve[i].train_loss, r2.curve[i].train_loss);
    EXPECT_EQ(r1.curve[i].test_accuracy, r2.curve[i].test_accuracy);
    EXPECT_EQ(r1.curve[i].cumulative_bytes, r2.curve[i].cumulative_bytes);
  }
  EXPECT_EQ(r1.total_bytes, r2.total_bytes);
  EXPECT_EQ(r1.total_sim_seconds, r2.total_sim_seconds);
}

TEST(SplitTrainer, PartialParticipationLossIgnoresIdlePlatforms) {
  // Regression: with participation < 1 the first-round curve point used to
  // average last_loss() over ALL platforms, mixing the initial
  // last_loss_ = 0 of hospitals that skipped the round into the reported
  // loss and biasing the curve low.
  const auto train = make_dataset(128);
  const auto test = make_dataset(16);
  Rng prng(23);
  const std::size_t platforms = 6;
  const auto partition = data::partition_iid(train.size(), platforms, prng);
  auto cfg = base_config();
  cfg.rounds = 1;
  cfg.eval_every = 1;
  cfg.participation = 0.5;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  ASSERT_EQ(report.curve.size(), 1U);

  // Reconstruct both definitions from the platform state after round 1.
  double participant_sum = 0.0, all_sum = 0.0;
  std::size_t participant_count = 0;
  for (std::size_t p = 0; p < platforms; ++p) {
    all_sum += trainer.platform(p).last_loss();
    if (trainer.platform(p).steps_completed() > 0) {
      participant_sum += trainer.platform(p).last_loss();
      ++participant_count;
    }
  }
  ASSERT_GT(participant_count, 0U);
  // The seed must leave at least one platform idle for the regression to
  // bite; seed 23 with participation 0.5 over 6 platforms does.
  ASSERT_LT(participant_count, platforms);

  const double fixed = participant_sum / static_cast<double>(participant_count);
  const double biased = all_sum / static_cast<double>(platforms);
  EXPECT_DOUBLE_EQ(report.curve[0].train_loss, fixed);
  EXPECT_NE(report.curve[0].train_loss, biased);  // old definition fails
}

TEST(SplitTrainer, PartialParticipationLossAveragesAllOnceWarm) {
  // Once every platform has stepped at least once, the reported loss is the
  // all-platform average again (stale-but-real losses, no zero bias).
  const auto train = make_dataset(128);
  const auto test = make_dataset(16);
  Rng prng(23);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  auto cfg = base_config();
  cfg.rounds = 40;
  cfg.eval_every = 40;
  cfg.participation = 0.5;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  ASSERT_EQ(report.curve.size(), 1U);
  double all_sum = 0.0;
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_GT(trainer.platform(p).steps_completed(), 0);
    all_sum += trainer.platform(p).last_loss();
  }
  EXPECT_DOUBLE_EQ(report.curve[0].train_loss, all_sum / 3.0);
}

TEST(SplitTrainer, CurvesAndBytesInvariantToThreadCount) {
  // The determinism contract (docs/PROTOCOL.md): --threads only changes
  // wall-clock, never wire bytes, loss curves, or accuracy.
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  auto cfg = base_config();
  cfg.rounds = 6;
  cfg.eval_every = 3;
  cfg.participation = 0.7;

  metrics::TrainReport reports[2];
  for (int run = 0; run < 2; ++run) {
    cfg.threads = run == 0 ? 1 : 4;
    Rng prng(3);
    const auto partition = data::partition_iid(train.size(), 3, prng);
    core::SplitTrainer trainer(builder(), train, partition, test, cfg);
    reports[run] = trainer.run();
  }
  set_global_threads(0);
  ASSERT_EQ(reports[0].curve.size(), reports[1].curve.size());
  for (std::size_t i = 0; i < reports[0].curve.size(); ++i) {
    EXPECT_EQ(reports[0].curve[i].train_loss, reports[1].curve[i].train_loss);
    EXPECT_EQ(reports[0].curve[i].test_accuracy,
              reports[1].curve[i].test_accuracy);
    EXPECT_EQ(reports[0].curve[i].cumulative_bytes,
              reports[1].curve[i].cumulative_bytes);
    EXPECT_EQ(reports[0].curve[i].sim_seconds,
              reports[1].curve[i].sim_seconds);
  }
  EXPECT_EQ(reports[0].total_bytes, reports[1].total_bytes);
  EXPECT_EQ(reports[0].total_sim_seconds, reports[1].total_sim_seconds);
}

TEST(SplitTrainer, ByteBudgetStopsEarly) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  Rng prng(5);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  auto cfg = base_config();
  cfg.rounds = 1000;

  // First measure one round's bytes, then budget for ~3 rounds.
  auto probe_cfg = cfg;
  probe_cfg.rounds = 1;
  probe_cfg.eval_every = 1;
  core::SplitTrainer probe(builder(), train, partition, test, probe_cfg);
  const auto one_round_bytes = probe.run().total_bytes;

  cfg.byte_budget = 3 * one_round_bytes;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_EQ(report.steps_completed, 3);
  EXPECT_GE(report.total_bytes, cfg.byte_budget);
  EXPECT_LT(report.total_bytes, cfg.byte_budget + one_round_bytes);
}

TEST(SplitTrainer, ProportionalMinibatchesFollowShards) {
  const auto train = make_dataset(120);
  const auto test = make_dataset(16);
  Rng prng(7);
  const auto partition = data::partition_weighted(
      train.size(), {6.0, 3.0, 1.0}, prng);
  auto cfg = base_config();
  cfg.total_batch = 20;
  cfg.policy = core::MinibatchPolicy::kProportional;
  cfg.rounds = 1;
  cfg.eval_every = 1;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto& mb = trainer.minibatches();
  ASSERT_EQ(mb.size(), 3U);
  EXPECT_EQ(mb[0], 12);
  EXPECT_EQ(mb[1], 6);
  EXPECT_EQ(mb[2], 2);
}

TEST(SplitTrainer, UniformPolicyIgnoresImbalance) {
  const auto train = make_dataset(120);
  const auto test = make_dataset(16);
  Rng prng(7);
  const auto partition = data::partition_weighted(
      train.size(), {6.0, 3.0, 1.0}, prng);
  auto cfg = base_config();
  cfg.total_batch = 21;
  cfg.policy = core::MinibatchPolicy::kUniform;
  cfg.rounds = 1;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  EXPECT_EQ(trainer.minibatches(), (std::vector<std::int64_t>{7, 7, 7}));
}

TEST(SplitTrainer, L1SyncExtensionMovesBytesAndKeepsLearning) {
  const auto train = make_dataset(64);
  const auto test = make_dataset(16);
  Rng prng(9);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  auto cfg = base_config();
  cfg.rounds = 8;
  cfg.eval_every = 4;
  cfg.sync_l1_every = 2;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  const auto& stats = trainer.network().stats();
  EXPECT_GT(stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kL1SyncUp)),
            0U);
  EXPECT_GT(stats.bytes_for_kind(
                static_cast<std::uint32_t>(core::MsgKind::kL1SyncDown)),
            0U);
  // After the final sync, both platforms hold identical L1 weights.
  const auto pa = trainer.platform(0).l1().parameters();
  const auto pb = trainer.platform(1).l1().parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
  EXPECT_GT(report.final_accuracy, 0.25);
}

TEST(SplitTrainer, SimulatedTimeAdvances) {
  const auto train = make_dataset(32);
  const auto test = make_dataset(8);
  Rng prng(11);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  auto cfg = base_config();
  cfg.rounds = 2;
  cfg.eval_every = 2;
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  const auto report = trainer.run();
  EXPECT_GT(report.total_sim_seconds, 0.0);
}

TEST(SplitTrainer, HeterogeneousWanSlowerThanUniformGigabit) {
  const auto train = make_dataset(32);
  const auto test = make_dataset(8);
  Rng prng(13);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  auto cfg = base_config();
  cfg.rounds = 2;
  cfg.eval_every = 2;
  cfg.hospital_wan = true;
  core::SplitTrainer wan(builder(), train, partition, test, cfg);
  const double wan_time = wan.run().total_sim_seconds;

  cfg.hospital_wan = false;
  cfg.uniform_link = net::Link::gbps(10.0, 0.1);
  core::SplitTrainer lan(builder(), train, partition, test, cfg);
  const double lan_time = lan.run().total_sim_seconds;
  EXPECT_GT(wan_time, lan_time);
}

TEST(SplitTrainer, CustomCutOverridesDefault) {
  const auto train = make_dataset(32);
  const auto test = make_dataset(8);
  Rng prng(15);
  const auto partition = data::partition_iid(train.size(), 2, prng);
  auto cfg = base_config();
  cfg.rounds = 1;
  cfg.cut = 1;  // only Flatten on the platform
  core::SplitTrainer trainer(builder(), train, partition, test, cfg);
  EXPECT_EQ(trainer.platform(0).l1().size(), 1U);
  EXPECT_NO_THROW(trainer.run());
}

TEST(SplitTrainer, RejectsEmptyPartition) {
  const auto train = make_dataset(32);
  const auto test = make_dataset(8);
  auto cfg = base_config();
  EXPECT_THROW(
      core::SplitTrainer(builder(), train, {}, test, cfg),
      InvalidArgument);
  EXPECT_THROW(core::SplitTrainer(builder(), train, {{0, 1}, {}}, test, cfg),
               InvalidArgument);
}


TEST(SplitTrainer, MedicalScansEndToEnd) {
  // The paper's deployment scenario end-to-end: grayscale medical scans,
  // conv model, imbalanced hospitals, heterogeneous WAN.
  data::SyntheticMedicalOptions opt;
  opt.num_examples = 120;
  opt.num_grades = 3;
  opt.image_size = 16;
  opt.noise_stddev = 0.1F;
  const data::SyntheticMedical train_scans(opt);
  opt.index_offset = 120;
  opt.num_examples = 48;
  const data::SyntheticMedical test_scans(opt);

  Rng prng(21);
  const auto partition =
      data::partition_weighted(train_scans.size(), {5.0, 2.0, 1.0}, prng);
  const core::ModelBuilder medical_builder = [] {
    models::FactoryConfig cfg;
    cfg.name = "resnet-mini";
    cfg.in_channels = 1;
    cfg.image_size = 16;
    cfg.num_classes = 3;
    return models::build_model(cfg);
  };
  core::SplitConfig cfg = base_config();
  cfg.total_batch = 12;
  cfg.rounds = 30;
  cfg.eval_every = 30;
  core::SplitTrainer trainer(medical_builder, train_scans, partition,
                             test_scans, cfg);
  const auto report = trainer.run();
  EXPECT_GT(report.final_accuracy, 0.5);  // 3 grades, chance 33%
  EXPECT_GT(report.total_bytes, 0U);
}

}  // namespace
}  // namespace splitmed
