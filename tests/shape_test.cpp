// Tests for tensor/shape.hpp.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/tensor/shape.hpp"

namespace splitmed {
namespace {

TEST(Shape, ScalarHasRankZeroNumelOne) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.str(), "[]");
}

TEST(Shape, BasicDimsAndNumel) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3U);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, NegativeAxisCountsFromBack) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, AxisOutOfRangeThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), InvalidArgument);
  EXPECT_THROW(s.dim(-3), InvalidArgument);
}

TEST(Shape, NegativeDimRejected) {
  EXPECT_THROW(Shape({2, -1}), InvalidArgument);
}

TEST(Shape, ZeroDimGivesZeroNumel) {
  const Shape s{4, 0, 3};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3U);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, CheckSameShapeThrowsWithContext) {
  try {
    check_same_shape(Shape{1, 2}, Shape{2, 1}, "test-context");
    FAIL() << "expected throw";
  } catch (const ShapeError& e) {
    EXPECT_NE(std::string(e.what()).find("test-context"), std::string::npos);
  }
}

}  // namespace
}  // namespace splitmed
