// Privacy audit walkthrough: what does the central server actually see, and
// what could a curious server reconstruct from it? Uses the library's attack
// tooling on the exact L1 a platform would deploy.
#include <iostream>

#include "src/common/format.hpp"
#include "src/core/split_model.hpp"
#include "src/data/synthetic_medical.hpp"
#include "src/models/factory.hpp"
#include "src/privacy/distance_correlation.hpp"
#include "src/privacy/reconstruction.hpp"
#include "src/tensor/ops.hpp"

int main() {
  using namespace splitmed;

  std::cout << "=== Privacy audit of the split deployment ===\n\n";

  // The hospital's scans (never sent anywhere).
  data::SyntheticMedicalOptions opt;
  opt.num_examples = 16;
  opt.num_grades = 4;
  opt.image_size = 16;
  const data::SyntheticMedical scans(opt);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < scans.size(); ++i) idx.push_back(i);
  const Tensor x = scans.batch_images(idx);

  // The deployed model, cut at the paper's L1.
  models::FactoryConfig mcfg;
  mcfg.name = "resnet-mini";
  mcfg.in_channels = 1;
  mcfg.image_size = 16;
  mcfg.num_classes = 4;
  auto model = models::build_model(mcfg);
  auto parts = core::split_at(std::move(model.net), model.default_cut);

  // 1. What crosses the wire: the smashed activations.
  const Tensor smashed = parts.platform.forward(x, /*training=*/false);
  const Shape per_scan{smashed.shape().dim(1), smashed.shape().dim(2),
                       smashed.shape().dim(3)};
  std::cout << "smashed data per scan: shape " << per_scan.str() << " ("
            << format_bytes(static_cast<std::uint64_t>(
                   smashed.numel() / scans.size() * 4))
            << "/scan crosses the WAN; the raw scan is "
            << format_bytes(static_cast<std::uint64_t>(
                   x.numel() / scans.size() * 4))
            << ")\n";

  // 2. Statistical dependence between scans and smashed data.
  const double dcor = privacy::distance_correlation(x, smashed);
  std::cout << "distance correlation(scan, smashed) = "
            << format_fixed(dcor, 3)
            << "  (1.0 = fully dependent; high values mean the smashed data "
               "still encodes the scan)\n\n";

  // 3. Worst-case attack: the server knows L1's weights and inverts.
  privacy::ReconstructionOptions attack;
  attack.iterations = 250;
  const auto result = privacy::reconstruct_inputs(parts.platform, x, attack);

  float mean = 0.0F;
  for (const float v : x.data()) mean += v;
  mean /= static_cast<float>(x.numel());
  float variance = 0.0F;
  for (const float v : x.data()) variance += (v - mean) * (v - mean);
  variance /= static_cast<float>(x.numel());

  std::cout << "white-box reconstruction attack ("
            << attack.iterations << " Adam iterations on the pixels):\n"
            << "  reconstruction MSE: " << format_fixed(result.input_mse, 4)
            << "\n  guess-the-mean MSE: " << format_fixed(variance, 4)
            << " (a knows-nothing attacker)\n";
  if (result.input_mse < 0.5F * variance) {
    std::cout << "  verdict: scans are substantially recoverable — the "
                 "paper's privacy argument assumes the server never learns "
                 "L1's weights. Keep L1 local, consider a deeper or "
                 "noise-regularized cut for defense in depth.\n";
  } else {
    std::cout << "  verdict: reconstruction is no better than guessing the "
                 "mean at this cut.\n";
  }
  return 0;
}
