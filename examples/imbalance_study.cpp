// Data-imbalance walkthrough (paper §II): shows how the proportional
// minibatch policy changes per-platform sampling rates and epoch alignment,
// then trains both policies on a heavily skewed partition.
#include <iostream>

#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/core/trainer.hpp"
#include "src/data/partition.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"

int main() {
  using namespace splitmed;

  std::cout << "=== Imbalance study: s_k ∝ |D_k| (paper §II) ===\n\n";

  data::SyntheticCifarOptions opt;
  opt.num_examples = 300;
  opt.num_classes = 4;
  opt.image_size = 8;
  opt.noise_stddev = 0.3F;
  const data::SyntheticCifar train(opt);
  opt.index_offset = opt.num_examples;
  opt.num_examples = 80;
  const data::SyntheticCifar test(opt);

  Rng prng(9);
  const auto partition =
      data::partition_weighted(train.size(), {12, 4, 2, 1}, prng);

  // Show what each policy does to the per-round schedule.
  std::vector<std::int64_t> shard_sizes;
  for (const auto& shard : partition) {
    shard_sizes.push_back(static_cast<std::int64_t>(shard.size()));
  }
  const std::int64_t total_batch = 24;
  const auto uniform = core::minibatch_sizes(core::MinibatchPolicy::kUniform,
                                             total_batch, shard_sizes);
  const auto proportional = core::minibatch_sizes(
      core::MinibatchPolicy::kProportional, total_batch, shard_sizes);

  Table schedule({"platform", "|D_k|", "s_k uniform", "epochs/100rnd uniform",
                  "s_k proportional", "epochs/100rnd proportional"});
  for (std::size_t k = 0; k < shard_sizes.size(); ++k) {
    const auto epochs = [&](std::int64_t s) {
      return format_fixed(100.0 * static_cast<double>(s) /
                              static_cast<double>(shard_sizes[k]),
                          1);
    };
    schedule.add_row({std::to_string(k), std::to_string(shard_sizes[k]),
                      std::to_string(uniform[k]), epochs(uniform[k]),
                      std::to_string(proportional[k]),
                      epochs(proportional[k])});
  }
  schedule.print(std::cout);
  std::cout << "\nuniform minibatches make small hospitals cycle their data "
               "far more often (bias toward their distribution); the "
               "proportional policy equalizes the per-example sampling rate "
               "— every platform finishes an epoch together.\n\n";

  // Train both policies end-to-end.
  const core::ModelBuilder builder = [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };
  for (const auto policy : {core::MinibatchPolicy::kUniform,
                            core::MinibatchPolicy::kProportional}) {
    core::SplitConfig cfg;
    cfg.total_batch = total_batch;
    cfg.policy = policy;
    cfg.rounds = 80;
    cfg.eval_every = 80;
    cfg.sgd.learning_rate = 0.02F;
    cfg.sgd.momentum = 0.5F;
    core::SplitTrainer trainer(builder, train, partition, test, cfg);
    const auto report = trainer.run();
    std::cout << core::minibatch_policy_name(policy)
              << " policy: accuracy " << format_percent(report.final_accuracy)
              << " after " << format_bytes(report.total_bytes) << "\n";
  }
  return 0;
}
