// Quickstart: train a model across 3 simulated hospitals with the paper's
// split-learning protocol in ~30 lines of API use.
//
//   1. make a dataset and partition it across platforms (hospitals)
//   2. pick a model family from the factory
//   3. configure and run the SplitTrainer
//   4. read accuracy + exact communication cost from the report
#include <iostream>

#include "src/common/format.hpp"
#include "src/core/trainer.hpp"
#include "src/data/partition.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"

int main() {
  using namespace splitmed;

  // 1. Data: a CIFAR-shaped synthetic dataset, split across 3 hospitals
  //    with unequal sizes (the paper's imbalance scenario).
  data::SyntheticCifarOptions data_opt;
  data_opt.num_examples = 240;
  data_opt.num_classes = 4;
  data_opt.image_size = 8;
  data_opt.noise_stddev = 0.3F;
  const data::SyntheticCifar train(data_opt);
  data_opt.index_offset = data_opt.num_examples;  // held-out split
  data_opt.num_examples = 80;
  const data::SyntheticCifar test(data_opt);

  Rng partition_rng(1);
  const auto partition =
      data::partition_zipf(train.size(), /*num_platforms=*/3,
                           /*alpha=*/1.0, partition_rng);

  // 2. Model: any name from models::model_names(). The builder is called
  //    once per platform replica — deterministic, so every hospital starts
  //    with identical L1 weights (the paper's postulate).
  const core::ModelBuilder builder = [] {
    models::FactoryConfig cfg;
    cfg.name = "mlp";
    cfg.image_size = 8;
    cfg.num_classes = 4;
    return models::build_model(cfg);
  };

  // 3. Train with the 4-message split protocol over a simulated hospital WAN.
  core::SplitConfig cfg;
  cfg.total_batch = 24;
  cfg.policy = core::MinibatchPolicy::kProportional;  // s_k ∝ |D_k|
  cfg.rounds = 60;
  cfg.eval_every = 10;
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  core::SplitTrainer trainer(builder, train, partition, test, cfg);
  const metrics::TrainReport report = trainer.run();

  // 4. Results: accuracy plus the exact wire traffic the protocol moved.
  std::cout << "final test accuracy: " << format_percent(report.final_accuracy)
            << "\ncommunication:       " << format_bytes(report.total_bytes)
            << " in " << trainer.network().stats().total_messages()
            << " messages\nsimulated WAN time:  "
            << format_duration(report.total_sim_seconds) << "\n\n";
  std::cout << "bytes vs accuracy curve:\n";
  for (const auto& p : report.curve) {
    std::cout << "  round " << p.step << ": "
              << format_bytes(p.cumulative_bytes) << " -> "
              << format_percent(p.test_accuracy) << "\n";
  }
  return 0;
}
