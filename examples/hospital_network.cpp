// Geo-distributed hospital scenario — the paper's motivating deployment
// (§I and future work: "geo-distributed hospitals"): five hospitals with
// heterogeneous WAN links jointly grade lesions on synthetic medical scans,
// without any scan leaving its hospital. Compares the split framework
// against each hospital training alone, and reports per-grade recall (what
// a clinician would ask for).
#include <iostream>

#include "src/baselines/local_only.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/core/trainer.hpp"
#include "src/data/partition.hpp"
#include "src/data/synthetic_medical.hpp"
#include "src/metrics/confusion.hpp"
#include "src/models/factory.hpp"
#include "src/net/topology.hpp"

namespace {

using namespace splitmed;

constexpr std::int64_t kHospitals = 5;
constexpr std::int64_t kGrades = 4;
constexpr std::int64_t kScans = 400;

data::SyntheticMedical make_scans(std::int64_t n, std::int64_t offset) {
  data::SyntheticMedicalOptions opt;
  opt.num_examples = n;
  opt.num_grades = kGrades;
  opt.image_size = 16;
  opt.noise_stddev = 0.25F;
  opt.index_offset = offset;
  return data::SyntheticMedical(opt);
}

}  // namespace

int main() {
  std::cout << "=== Geo-distributed hospital network ===\n"
            << kHospitals << " hospitals, " << kScans
            << " scans total, lesion grades 0 (healthy) .. " << kGrades - 1
            << "\n\n";

  const auto train = make_scans(kScans, 0);
  const auto test = make_scans(120, kScans);

  // Hospital sizes are wildly unequal — a university hospital vs clinics.
  Rng prng(3);
  const auto partition =
      data::partition_weighted(train.size(), {10, 5, 3, 2, 1}, prng);
  std::cout << "hospital shard sizes:";
  for (const auto& shard : partition) std::cout << ' ' << shard.size();
  std::cout << "\n\n";

  const core::ModelBuilder builder = [] {
    models::FactoryConfig cfg;
    cfg.name = "resnet-mini";
    cfg.in_channels = 1;  // grayscale scans
    cfg.image_size = 16;
    cfg.num_classes = kGrades;
    return models::build_model(cfg);
  };

  // --- split framework over the heterogeneous hospital WAN ---------------
  core::SplitConfig cfg;
  cfg.total_batch = 30;
  cfg.policy = core::MinibatchPolicy::kProportional;
  cfg.rounds = 80;
  cfg.eval_every = 20;
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  cfg.hospital_wan = true;
  core::SplitTrainer trainer(builder, train, partition, test, cfg);
  const auto report = trainer.run();

  // --- each hospital alone (today's practice, per the paper's §I) ---------
  baselines::BaselineConfig local_cfg;
  local_cfg.total_batch = 30;
  local_cfg.steps = 80;
  local_cfg.eval_every = 80;
  local_cfg.sgd = cfg.sgd;
  baselines::LocalOnlyTrainer local(builder, train, partition, test,
                                    local_cfg);
  const auto local_report = local.run();

  Table summary({"approach", "mean accuracy", "worst hospital", "bytes moved",
                 "WAN time"});
  summary.add_row({"split framework (paper)",
                   format_percent(report.final_accuracy), "(shared model)",
                   format_bytes(report.total_bytes),
                   format_duration(report.total_sim_seconds)});
  summary.add_row({"local-only (status quo)",
                   format_percent(local_report.combined.final_accuracy),
                   format_percent(local_report.min_accuracy), "0 B", "0 ms"});
  summary.print(std::cout);

  // Per-grade recall of hospital 0's deployed composite model.
  metrics::ConfusionMatrix cm(kGrades);
  for (std::int64_t begin = 0; begin < test.size(); begin += 30) {
    const std::int64_t end = std::min<std::int64_t>(begin + 30, test.size());
    std::vector<std::int64_t> idx;
    for (std::int64_t i = begin; i < end; ++i) idx.push_back(i);
    Tensor x = test.batch_images(idx);
    Tensor logits = trainer.platform(0).l1().forward(x, false);
    logits = trainer.server().body().forward(logits, false);
    cm.add_batch(logits, test.batch_labels(idx));
  }
  std::cout << "\nper-grade recall (hospital 0's deployed model):\n";
  for (std::int64_t g = 0; g < kGrades; ++g) {
    std::cout << "  grade " << g << ": " << format_percent(cm.recall(g))
              << "\n";
  }
  std::cout << "balanced accuracy: " << format_percent(cm.balanced_accuracy())
            << "\n\nNo scan or label ever left its hospital: the server saw "
               "only L1 activations and logit gradients.\n";
  return 0;
}
