// L1 re-synchronization ablation (extension): the paper initializes every
// platform's L1 identically and never re-syncs, so replicas drift apart on
// non-IID data. This bench measures accuracy and extra traffic when L1 is
// periodically averaged through the server, under label-skewed shards (the
// worst case for drift).
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 4;
constexpr std::int64_t kRounds = 80;

}  // namespace

int main() {
  std::cout << "=== L1 re-sync ablation (mlp, label-skewed shards, "
            << kRounds << " rounds, K=4) ===\n"
            << "paper: identical init, never re-synced (sync period = never)\n\n";

  const auto train = make_cifar(320, kClasses, 42, 8, 0, 0.4F);
  const auto test = make_cifar(96, kClasses, 42, 8, 320, 0.4F);
  Rng prng(13);
  // Each platform sees only ~2 of the 4 classes locally.
  const auto partition = data::partition_label_skew(train, 4, 2, prng);
  const auto builder = mini_builder("mlp", kClasses, 8);

  Table table({"L1 sync period", "final acc", "bytes total", "sync bytes"});
  for (const std::int64_t period : {0L, 20L, 5L, 1L}) {
    core::SplitConfig cfg;
    cfg.total_batch = 24;
    cfg.rounds = kRounds;
    cfg.eval_every = kRounds;
    cfg.sgd = comparison_sgd();
    cfg.sync_l1_every = period;
    core::SplitTrainer trainer(builder, train, partition, test, cfg);
    const auto report = trainer.run();
    const auto& stats = trainer.network().stats();
    const std::uint64_t sync_bytes =
        stats.bytes_for_kind(
            static_cast<std::uint32_t>(core::MsgKind::kL1SyncUp)) +
        stats.bytes_for_kind(
            static_cast<std::uint32_t>(core::MsgKind::kL1SyncDown));
    table.add_row({period == 0 ? "never (paper)" : std::to_string(period),
                   format_percent(report.final_accuracy),
                   format_bytes(report.total_bytes),
                   format_bytes(sync_bytes)});
  }
  table.print(std::cout);
  std::cout << "\nreading: under label skew each platform's L1 adapts to its "
               "own classes; periodic averaging trades a little traffic for "
               "a shared representation. With the paper's small L1 the "
               "overhead is negligible — an easy robustness win.\n"
            << std::endl;
  return 0;
}
