// Shared helpers for the experiment benches: dataset construction, model
// builders and run configuration shared by the Fig. 4 reproductions.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/trainer.hpp"
#include "src/data/synthetic_cifar.hpp"
#include "src/models/factory.hpp"

namespace splitmed::bench {

/// CIFAR-shaped synthetic dataset at simulator scale (16x16 images keep a
/// single-core run in seconds; shapes/classes mirror CIFAR-10/100).
inline data::SyntheticCifar make_cifar(std::int64_t examples,
                                       std::int64_t classes,
                                       std::uint64_t seed = 42,
                                       std::int64_t image_size = 16,
                                       std::int64_t index_offset = 0,
                                       float noise_stddev = 0.8F) {
  data::SyntheticCifarOptions opt;
  opt.num_examples = examples;
  opt.num_classes = classes;
  opt.image_size = image_size;
  // Heavy pixel noise makes accuracy rise gradually over the step budget —
  // the regime where byte-budget comparisons (Fig. 4) are informative.
  opt.noise_stddev = noise_stddev;
  opt.seed = seed;
  opt.index_offset = index_offset;
  return data::SyntheticCifar(opt);
}

/// Held-out test split: same seed (same class signatures = same task),
/// virtual indices shifted past the training range (fresh examples).
inline data::SyntheticCifar make_cifar_test(std::int64_t examples,
                                            std::int64_t classes,
                                            std::int64_t train_examples,
                                            std::uint64_t seed = 42,
                                            std::int64_t image_size = 16) {
  return make_cifar(examples, classes, seed, image_size, train_examples);
}

/// Deterministic builder for a named mini model.
inline core::ModelBuilder mini_builder(std::string name, std::int64_t classes,
                                       std::int64_t image_size = 16) {
  return [name = std::move(name), classes, image_size] {
    models::FactoryConfig cfg;
    cfg.name = name;
    cfg.image_size = image_size;
    cfg.num_classes = classes;
    return models::build_model(cfg);
  };
}

/// Optimizer settings shared by every protocol in a comparison — the runs
/// differ ONLY in what bytes move when.
inline optim::SgdOptions comparison_sgd() {
  optim::SgdOptions sgd;
  sgd.learning_rate = 0.02F;
  sgd.momentum = 0.5F;
  return sgd;
}

}  // namespace splitmed::bench
