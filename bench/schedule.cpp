// Scheduling ablation (extension): the paper's strictly sequential Fig. 3
// workflow vs overlapped uploads (same bytes, same math per platform, less
// WAN wall-clock). Also shows partial participation (hospitals joining
// intermittently) degrading gracefully.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 4;
constexpr std::int64_t kRounds = 50;

}  // namespace

int main() {
  std::cout << "=== Round scheduling & participation (mlp, " << kRounds
            << " rounds, heterogeneous WAN) ===\n\n";

  const auto train = make_cifar(384, kClasses, 42, 8, 0, 0.4F);
  const auto test = make_cifar(96, kClasses, 42, 8, 384, 0.4F);
  const auto builder = mini_builder("mlp", kClasses, 8);

  Table table({"K", "schedule", "participation", "bytes", "WAN time",
               "final acc"});
  for (const std::int64_t k : {4L, 8L}) {
    Rng prng(7);
    const auto partition = data::partition_iid(train.size(), k, prng);
    struct Case {
      core::Schedule schedule;
      double participation;
      const char* label;
    };
    for (const Case& c :
         {Case{core::Schedule::kSequential, 1.0, "sequential (paper)"},
          Case{core::Schedule::kOverlapped, 1.0, "overlapped"},
          Case{core::Schedule::kOverlapped, 0.5, "overlapped"}}) {
      core::SplitConfig cfg;
      cfg.total_batch = 4 * k;
      cfg.rounds = kRounds;
      cfg.eval_every = kRounds;
      cfg.sgd = comparison_sgd();
      cfg.schedule = c.schedule;
      cfg.participation = c.participation;
      core::SplitTrainer trainer(builder, train, partition, test, cfg);
      const auto report = trainer.run();
      table.add_row({std::to_string(k), c.label,
                     format_percent(c.participation, 0),
                     format_bytes(report.total_bytes),
                     format_duration(report.total_sim_seconds),
                     format_percent(report.final_accuracy)});
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: overlapping uploads moves the same bytes in a "
               "fraction of the WAN time (the sequential Fig. 3 workflow "
               "pays K round-trips back to back); 50% participation halves "
               "traffic and still converges — robustness to intermittent "
               "hospitals.\n"
            << std::endl;
  return 0;
}
