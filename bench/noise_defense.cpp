// Privacy-defense ablation (extension): Gaussian noise on the smashed data
// before it leaves the platform. Sweeps the noise scale and reports the
// three-way trade: accuracy, distance-correlation leakage, reconstruction
// attack error.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/core/split_model.hpp"
#include "src/privacy/distance_correlation.hpp"
#include "src/privacy/reconstruction.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 10;
constexpr std::int64_t kRounds = 80;

}  // namespace

int main() {
  std::cout << "=== Smashed-data noise defense (vgg-mini, " << kRounds
            << " rounds, K=4) ===\n\n";

  const auto train = make_cifar(512, kClasses, 42);
  const auto test = make_cifar_test(128, kClasses, 512);
  Rng prng(6);
  const auto partition = data::partition_iid(train.size(), 4, prng);
  const auto builder = mini_builder("vgg-mini", kClasses);

  // Leakage probe data: a batch of raw images and L1's clean activations.
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < 24; ++i) idx.push_back(i);
  const Tensor x = train.batch_images(idx);

  Table table({"noise std", "final acc", "dCor(x, noisy smashed)",
               "recon MSE vs noisy target"});
  for (const float noise : {0.0F, 0.25F, 0.5F, 1.0F, 2.0F}) {
    core::SplitConfig cfg;
    cfg.total_batch = 32;
    cfg.rounds = kRounds;
    cfg.eval_every = kRounds;
    cfg.sgd = comparison_sgd();
    cfg.smash_noise_std = noise;
    core::SplitTrainer trainer(builder, train, partition, test, cfg);
    const auto report = trainer.run();

    // What the server observes: clean smashed data + channel noise.
    auto probe = builder();
    auto parts = core::split_at(std::move(probe.net), probe.default_cut);
    Tensor smashed = parts.platform.forward(x, false);
    Rng noise_rng(99);
    {
      auto d = smashed.data();
      for (auto& v : d) v += noise * noise_rng.normal();
    }
    const double dcor = privacy::distance_correlation(x, smashed);

    // The attacker inverts exactly what crossed the wire: the noisy
    // observation.
    privacy::ReconstructionOptions attack;
    attack.iterations = 150;
    const auto result = privacy::reconstruct_from_observation(
        parts.platform, smashed, x, attack);

    table.add_row({format_fixed(noise, 2),
                   format_percent(report.final_accuracy),
                   format_fixed(dcor, 3),
                   format_fixed(result.input_mse, 4)});
  }
  table.print(std::cout);
  std::cout << "\nreading: moderate noise (std 0.25-0.5) blocks exact "
               "inversion — reconstruction error grows ~20x — at little "
               "accuracy cost, while heavy noise destroys learning. Note "
               "dCor barely moves: additive noise defeats the reconstruction "
               "attack but not coarse statistical dependence; defense in "
               "depth (deeper cut + noise) is the robust configuration.\n"
            << std::endl;
  return 0;
}
