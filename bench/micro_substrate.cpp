// Micro-benchmarks of the substrates (google-benchmark): GEMM, conv layers,
// im2col, tensor codec, simulated network send/receive.
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/core/protocol.hpp"
#include "src/net/network.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/serial/tensor_codec.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/im2col.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace splitmed;

void BM_GemmNN(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  ConvGeometry g{16, 32, 32, 3, 3, 1, 1};
  Rng rng(2);
  const Tensor img = Tensor::normal(Shape{16, 32, 32}, rng);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  for (auto _ : state) {
    im2col(g, img.data(), col);
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(3, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::normal(Shape{batch, 3, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvForward)->Arg(1)->Arg(16);

void BM_ConvBackward(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Rng rng(4);
  nn::Conv2d conv(3, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::normal(Shape{batch, 3, 16, 16}, rng);
  const Tensor y = conv.forward(x, true);
  const Tensor g = Tensor::normal(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gi = conv.backward(g);
    benchmark::DoNotOptimize(gi.data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvBackward)->Arg(16);

void BM_LinearForward(benchmark::State& state) {
  Rng rng(5);
  nn::Linear lin(512, 512, rng);
  const Tensor x = Tensor::normal(Shape{32, 512}, rng);
  for (auto _ : state) {
    Tensor y = lin.forward(x, true);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_LinearForward);

void BM_TensorCodecRoundTrip(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(6);
  const Tensor t = Tensor::normal(Shape{n}, rng);
  for (auto _ : state) {
    BufferWriter w;
    encode_tensor(t, w);
    BufferReader r({w.bytes().data(), w.bytes().size()});
    Tensor back = decode_tensor(r);
    benchmark::DoNotOptimize(back.data().data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_TensorCodecRoundTrip)->Arg(1024)->Arg(65536);

void BM_NetworkSendReceive(benchmark::State& state) {
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  Rng rng(7);
  const Tensor t = Tensor::normal(Shape{4096}, rng);
  std::uint64_t round = 0;
  for (auto _ : state) {
    network.send(core::make_tensor_envelope(a, b, core::MsgKind::kActivation,
                                            ++round, t));
    Envelope e = network.receive(b);
    benchmark::DoNotOptimize(e.payload.data());
  }
}
BENCHMARK(BM_NetworkSendReceive);

}  // namespace
