// Micro-benchmarks of the substrates (google-benchmark): GEMM, conv layers,
// im2col, tensor codec, simulated network send/receive.
//
// Every benchmark pins the global thread pool explicitly (kernel families
// to 1 thread, layer families to a fixed 4) so the recorded numbers measure
// the code, not the machine's core count. scripts/bench_substrate.py runs
// this binary with --benchmark_format=json and distills the trajectory into
// BENCH_substrate.json (see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/protocol.hpp"
#include "src/net/network.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/plan.hpp"
#include "src/nn/sequential.hpp"
#include "src/serial/tensor_codec.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/im2col.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/workspace.hpp"

namespace {

using namespace splitmed;

// Tag every JSON capture with THIS binary's build type so
// scripts/bench_substrate.py can refuse to record debug numbers. (The
// benchmark library's own `library_build_type` context key reports how
// libbenchmark was built, which on distro packages is always release — it
// says nothing about our flags.)
const int kBuildTypeContext = [] {
#ifdef NDEBUG
  benchmark::AddCustomContext("splitmed_build_type", "release");
#else
  benchmark::AddCustomContext("splitmed_build_type", "debug");
#endif
  return 0;
}();

// Fixed thread pins per benchmark family. Kernel benches run serial so
// GFLOP/s is per-core kernel speed; layer benches use a fixed small pool so
// fork-join costs show up without depending on hardware_concurrency.
constexpr int kKernelThreads = 1;
constexpr int kLayerThreads = 4;

void BM_GemmNN(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The naive reference kernel on the same shapes: the floor the packed
// kernels are measured against (they must match it bitwise — gemm_test —
// while beating it on time).
void BM_GemmNN_Ref(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm_nn_ref(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN_Ref)->Arg(64)->Arg(256);

// Non-square shapes from the split-model layers the simulator actually
// runs: {m, n, k} = {out_c, oh*ow, in_c*kernel²} for conv forward
// (VGG-style 3×3 blocks and a stem conv), plus a ResNet-ish deep block.
void BM_GemmNN_Shapes(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    gemm_nn(m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmNN_Shapes)
    ->Args({64, 1024, 576})   // 3x3 conv, 64ch, 32x32 output
    ->Args({64, 1024, 27})    // stem conv from 3 input channels
    ->Args({128, 256, 1152}); // deeper 3x3 block, 16x16 output

// Conv backward's dcol: C[crk, ohw] = Wᵀ[out_c, crk] · g[out_c, ohw].
void BM_GemmTN(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{k, m}, rng);
  const Tensor b = Tensor::normal(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    gemm_tn(m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmTN)
    ->Args({576, 1024, 64})   // conv dcol for the 3x3/64ch layer
    ->Args({512, 512, 32});   // linear dW at batch 32

// Linear forward / conv dW: C[m, n] = A[m, k] · B[n, k]ᵀ.
void BM_GemmNT(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{n, k}, rng);
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    gemm_nt(m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmNT)
    ->Args({32, 512, 512})    // linear forward, batch 32
    ->Args({64, 576, 1024});  // conv dW for the 3x3/64ch layer

void BM_Im2col(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  ConvGeometry g{16, 32, 32, 3, 3, 1, 1};
  Rng rng(2);
  const Tensor img = Tensor::normal(Shape{16, 32, 32}, rng);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  for (auto _ : state) {
    im2col(g, img.data(), col);
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  set_global_threads(kLayerThreads);
  const std::int64_t batch = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(3, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::normal(Shape{batch, 3, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvForward)->Arg(1)->Arg(16);

void BM_ConvBackward(benchmark::State& state) {
  set_global_threads(kLayerThreads);
  const std::int64_t batch = state.range(0);
  Rng rng(4);
  nn::Conv2d conv(3, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::normal(Shape{batch, 3, 16, 16}, rng);
  const Tensor y = conv.forward(x, true);
  const Tensor g = Tensor::normal(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gi = conv.backward(g);
    benchmark::DoNotOptimize(gi.data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvBackward)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

void BM_LinearForward(benchmark::State& state) {
  set_global_threads(kLayerThreads);
  Rng rng(5);
  nn::Linear lin(512, 512, rng);
  const Tensor x = Tensor::normal(Shape{32, 512}, rng);
  for (auto _ : state) {
    Tensor y = lin.forward(x, true);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_LinearForward);

// --- Execution-planner fusion families -------------------------------------
// Each pair runs the SAME bytes-identical computation (plan_test asserts
// bitwise equality) through the fused epilogue path vs the legacy per-layer
// path, so Fused/Unfused time ratios isolate what fusion buys: no
// intermediate tensor materialization, no separate bias/BN/ReLU passes over
// the output. `peak_ws_bytes` reports the step-peak arena watermark the
// planner's slab chaining is measured by.

void run_infer_bench(benchmark::State& state, nn::Sequential& seq,
                     const Tensor& x, bool fused) {
  nn::set_planner_enabled(fused);
  (void)seq.infer(x);  // warm the arena to its high-water mark
  ws::reset_step_peak();
  for (auto _ : state) {
    Tensor y = seq.infer(x);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.counters["peak_ws_bytes"] =
      static_cast<double>(ws::global_step_peak_bytes());
  state.SetItemsProcessed(state.iterations() * x.shape().dim(0));
  nn::set_planner_enabled(true);
}

void conv_bn_relu_bench(benchmark::State& state, bool fused) {
  set_global_threads(kLayerThreads);
  Rng rng(8);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(16, 32, 3, 1, 1, rng);
  seq.emplace<nn::BatchNorm2d>(32);
  seq.emplace<nn::ReLU>();
  const Tensor x = Tensor::normal(Shape{8, 16, 16, 16}, rng);
  (void)seq.forward(x, true);  // make the BN running statistics non-trivial
  run_infer_bench(state, seq, x, fused);
}
void BM_ConvBnRelu_Fused(benchmark::State& state) {
  conv_bn_relu_bench(state, true);
}
void BM_ConvBnRelu_Unfused(benchmark::State& state) {
  conv_bn_relu_bench(state, false);
}
BENCHMARK(BM_ConvBnRelu_Fused);
BENCHMARK(BM_ConvBnRelu_Unfused);

void linear_relu_bench(benchmark::State& state, bool fused) {
  set_global_threads(kLayerThreads);
  Rng rng(9);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(512, 512, rng);
  seq.emplace<nn::ReLU>();
  const Tensor x = Tensor::normal(Shape{32, 512}, rng);
  run_infer_bench(state, seq, x, fused);
}
void BM_LinearRelu_Fused(benchmark::State& state) {
  linear_relu_bench(state, true);
}
void BM_LinearRelu_Unfused(benchmark::State& state) {
  linear_relu_bench(state, false);
}
BENCHMARK(BM_LinearRelu_Fused);
BENCHMARK(BM_LinearRelu_Unfused);

// Slab-chained deep inference: peak_ws_bytes must be flat in the depth arg
// with the planner on (2-slab ping-pong) — the pass-2 memory claim in
// numbers. Compare against the same depth Unfused, where every intermediate
// is a heap Tensor.
void conv_chain_bench(benchmark::State& state, bool fused) {
  set_global_threads(kLayerThreads);
  const std::int64_t depth = state.range(0);
  Rng rng(10);
  nn::Sequential seq;
  for (std::int64_t i = 0; i < depth; ++i) {
    seq.emplace<nn::Conv2d>(8, 8, 3, 1, 1, rng);
    seq.emplace<nn::ReLU>();
  }
  const Tensor x = Tensor::normal(Shape{4, 8, 16, 16}, rng);
  run_infer_bench(state, seq, x, fused);
}
void BM_ConvChainInfer_Fused(benchmark::State& state) {
  conv_chain_bench(state, true);
}
void BM_ConvChainInfer_Unfused(benchmark::State& state) {
  conv_chain_bench(state, false);
}
BENCHMARK(BM_ConvChainInfer_Fused)->Arg(4)->Arg(16);
BENCHMARK(BM_ConvChainInfer_Unfused)->Arg(4)->Arg(16);

void BM_TensorCodecRoundTrip(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  const std::int64_t n = state.range(0);
  Rng rng(6);
  const Tensor t = Tensor::normal(Shape{n}, rng);
  for (auto _ : state) {
    BufferWriter w;
    encode_tensor(t, w);
    BufferReader r({w.bytes().data(), w.bytes().size()});
    Tensor back = decode_tensor(r);
    benchmark::DoNotOptimize(back.data().data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_TensorCodecRoundTrip)->Arg(1024)->Arg(65536);

void BM_NetworkSendReceive(benchmark::State& state) {
  set_global_threads(kKernelThreads);
  net::Network network;
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  Rng rng(7);
  const Tensor t = Tensor::normal(Shape{4096}, rng);
  std::uint64_t round = 0;
  for (auto _ : state) {
    network.send(core::make_tensor_envelope(a, b, core::MsgKind::kActivation,
                                            ++round, t));
    Envelope e = network.receive(b);
    benchmark::DoNotOptimize(e.payload.data());
  }
}
BENCHMARK(BM_NetworkSendReceive);

}  // namespace
