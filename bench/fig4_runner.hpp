// Shared driver for the two measured Fig. 4 reproductions (VGG and ResNet).
//
// Protocol: train the proposed split framework for a fixed round budget,
// note the bytes it moved, then give Large-Scale Sync SGD and FedAvg exactly
// the same BYTE budget (they stop when it is exhausted). Reporting accuracy
// at equal transmitted bytes is precisely the comparison Fig. 4 plots.
#pragma once

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/baselines/cyclic.hpp"
#include "src/baselines/fedavg.hpp"
#include "src/baselines/sync_sgd.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/core/protocol.hpp"
#include "src/metrics/recorder.hpp"

namespace splitmed::bench {

struct Fig4Config {
  std::string model = "vgg-mini";
  std::string paper_line;          // the paper's reported numbers, for context
  std::int64_t classes = 10;
  std::int64_t train_examples = 512;
  std::int64_t test_examples = 128;
  std::int64_t platforms = 4;
  std::int64_t total_batch = 32;
  std::int64_t split_rounds = 120;
  std::int64_t eval_every = 15;
  double zipf_alpha = 0.8;         // the paper's imbalanced-hospital setting
  /// Substrate compute threads (0 = hardware default, 1 = serial). Changes
  /// wall-clock only: bytes, message order, and curves are invariant.
  std::int64_t threads = 0;
  std::string csv_path;
  /// Crash recovery (docs/CHECKPOINT.md): write a full-state checkpoint
  /// every N rounds of the proposed framework's run (0 = off), and/or
  /// resume it from an earlier checkpoint. Checkpointing is inert: curves
  /// are bitwise identical with it on or off.
  std::int64_t checkpoint_every = 0;
  std::string checkpoint_dir = "fig4_checkpoints";
  std::string resume_from;
  /// Observability (docs/OBSERVABILITY.md): Chrome trace-event JSON and
  /// Prometheus text snapshot for the proposed framework's run. Either path
  /// non-empty turns the ObsSession on; tracing never changes bytes or
  /// curves. trace_detail=2 adds per-layer nn spans.
  std::string trace_out;
  std::string metrics_out;
  /// Per-round critical-path attribution JSONL (one object per round:
  /// segment split + straggler identity; schema in docs/OBSERVABILITY.md,
  /// rendered by scripts/trace_report.py).
  std::string attribution_out;
  std::int64_t trace_detail = 1;
  /// Negotiated wire codec for activation / cut-grad payloads ("f32",
  /// "f16", "i8"). Applies to the proposed framework only — the baselines
  /// always move f32 parameters, which is exactly why the codec widens the
  /// equal-byte-budget gap.
  std::string codec = "f32";
};

inline int run_fig4(const Fig4Config& cfg) {
  std::cout << "=== Fig. 4 reproduction (" << cfg.model << ", " << cfg.classes
            << " classes) ===\n"
            << "paper reports: " << cfg.paper_line << "\n"
            << "setup: K=" << cfg.platforms << " platforms, "
            << cfg.train_examples << " train examples (zipf alpha "
            << cfg.zipf_alpha << "), batch " << cfg.total_batch << "\n\n";

  const auto train = make_cifar(cfg.train_examples, cfg.classes, 42);
  const auto test = make_cifar_test(cfg.test_examples, cfg.classes,
                                    cfg.train_examples, 42);
  Rng prng(7);
  const auto partition =
      data::partition_zipf(train.size(), cfg.platforms, cfg.zipf_alpha, prng);
  const auto builder = mini_builder(cfg.model, cfg.classes);

  metrics::ExperimentRecorder recorder("fig4-" + cfg.model);

  // Proposed framework.
  core::SplitConfig split_cfg;
  split_cfg.codec = parse_wire_codec(cfg.codec);
  split_cfg.total_batch = cfg.total_batch;
  split_cfg.policy = core::MinibatchPolicy::kProportional;
  split_cfg.rounds = cfg.split_rounds;
  split_cfg.eval_every = cfg.eval_every;
  split_cfg.sgd = comparison_sgd();
  split_cfg.threads = static_cast<int>(cfg.threads);
  split_cfg.checkpoint_every = cfg.checkpoint_every;
  split_cfg.checkpoint_dir = cfg.checkpoint_dir;
  split_cfg.resume_from = cfg.resume_from;
  if (!cfg.trace_out.empty() || !cfg.metrics_out.empty() ||
      !cfg.attribution_out.empty()) {
    split_cfg.obs.enabled = true;
    split_cfg.obs.trace_path = cfg.trace_out;
    split_cfg.obs.metrics_path = cfg.metrics_out;
    split_cfg.obs.attribution_path = cfg.attribution_out;
    split_cfg.obs.detail = static_cast<int>(cfg.trace_detail);
  }
  core::SplitTrainer split(builder, train, partition, test, split_cfg);
  if (!cfg.resume_from.empty()) {
    std::cout << "resumed proposed-framework run at round "
              << split.next_round() << "\n";
  }
  auto split_report = split.run();
  const std::uint64_t budget = split_report.total_bytes;
  recorder.add(std::move(split_report));
  if (obs::ObsSession* session = split.obs_session()) {
    // Export and uninstall now: the baseline comparators below run their
    // own networks, and their traffic does not belong in the proposed
    // framework's trace or metrics.
    session->close();
  }

  // Large-Scale Sync SGD (the paper's comparator), same byte budget.
  baselines::BaselineConfig sgd_cfg;
  sgd_cfg.total_batch = cfg.total_batch;
  sgd_cfg.steps = 1 << 20;  // budget-terminated
  sgd_cfg.eval_every = 2;
  sgd_cfg.byte_budget = budget;
  sgd_cfg.sgd = comparison_sgd();
  sgd_cfg.threads = static_cast<int>(cfg.threads);
  baselines::SyncSgdTrainer sgd(builder, train, partition, test, sgd_cfg);
  recorder.add(sgd.run());

  // FedAvg (related-work baseline), same byte budget.
  baselines::BaselineConfig fed_cfg = sgd_cfg;
  fed_cfg.eval_every = 1;
  fed_cfg.local_steps = 5;
  baselines::FedAvgTrainer fed(builder, train, partition, test, fed_cfg);
  recorder.add(fed.run());

  // Cyclic parameter sharing (the authors' prior approach, ref [3]),
  // same byte budget.
  baselines::BaselineConfig cyc_cfg = fed_cfg;
  baselines::CyclicTrainer cyclic(builder, train, partition, test, cyc_cfg);
  recorder.add(cyclic.run());

  recorder.print_summary(std::cout);
  std::cout << '\n';
  recorder.print_bytes_vs_accuracy(
      std::cout, {budget / 4, budget / 2, (3 * budget) / 4, budget});

  // Where the proposed framework's bytes went: per protocol kind, and per
  // platform<->server direction (uplink = activations + logit grads,
  // downlink = logits + cut grads; the star topology has no other links).
  const auto& split_stats = split.network().stats();
  Table kind_table({"message kind", "messages", "bytes", "share"});
  for (const auto& [kind, bytes] : split_stats.bytes_by_kind()) {
    kind_table.add_row(
        {core::msg_kind_name(static_cast<core::MsgKind>(kind)),
         std::to_string(split_stats.messages_for_kind(kind)),
         format_bytes(bytes),
         format_percent(static_cast<double>(bytes) /
                        static_cast<double>(budget))});
  }
  std::cout << "\nproposed framework, bytes by message kind:\n";
  kind_table.print(std::cout);
  Table dir_table({"link", "uplink", "downlink"});
  const NodeId server_id = split.server().id();
  for (std::size_t p = 0; p < split.num_platforms(); ++p) {
    const NodeId pid = split.platform(p).id();
    dir_table.add_row(
        {split.network().node_name(pid) + " <-> " +
             split.network().node_name(server_id),
         format_bytes(split_stats.bytes_between(pid, server_id)),
         format_bytes(split_stats.bytes_between(server_id, pid))});
  }
  std::cout << "\nproposed framework, bytes by direction:\n";
  dir_table.print(std::cout);

  // Machine-parseable byte accounting (the CI codec smoke diffs these
  // across --codec runs). Payload bytes exclude the fixed 28-byte envelope
  // headers — that is the quantity the codec actually compresses.
  const std::uint64_t header_bytes =
      split_stats.total_messages() * Envelope::kEnvelopeHeaderBytes;
  std::cout << "\nsplit-wire-accounting: codec=" << cfg.codec
            << " total_bytes=" << split_stats.total_bytes()
            << " payload_bytes=" << (split_stats.total_bytes() - header_bytes)
            << " messages=" << split_stats.total_messages() << "\n";

  if (split.obs_session() != nullptr) {
    if (!cfg.trace_out.empty()) {
      std::cout << "\ntrace written to " << cfg.trace_out
                << " (load in Perfetto / chrome://tracing; pid 1 = wall "
                   "clock, pid 2 = simulated WAN clock)";
    }
    if (!cfg.metrics_out.empty()) {
      std::cout << "\nmetrics snapshot written to " << cfg.metrics_out;
    }
    if (!cfg.attribution_out.empty()) {
      std::cout << "\nper-round attribution written to " << cfg.attribution_out
                << " (render with scripts/trace_report.py)";
    }
    std::cout << "\n";
  }

  const auto& reports = recorder.reports();
  if (reports[0].skipped_steps > 0 || reports[0].examples_lost > 0) {
    std::cout << "\nproposed framework, fault accounting: "
              << reports[0].skipped_steps << " skipped steps, "
              << reports[0].examples_lost
              << " examples consumed but never applied\n";
  }
  const double split_acc = reports[0].accuracy_at_bytes(budget);
  const double sgd_acc = reports[1].accuracy_at_bytes(budget);
  std::cout << "\nat the full byte budget (" << format_bytes(budget)
            << "): proposed " << format_percent(split_acc)
            << " vs large-scale SGD " << format_percent(sgd_acc) << " — "
            << (split_acc > sgd_acc ? "proposed wins (matches Fig. 4 shape)"
                                    : "UNEXPECTED: baseline wins")
            << "\nnote: cyclic (the authors' prior approach, ref [3]) is "
               "byte-competitive at this MINI scale because the proxy "
               "model's parameter vector is small; at paper scale a single "
               "hop costs a full VGG-16 (134 MB) — see fig4_comm_model.\n";

  if (!cfg.csv_path.empty()) {
    recorder.write_csv(cfg.csv_path);
    std::cout << "curves written to " << cfg.csv_path << "\n";
  }
  std::cout << std::endl;
  return split_acc > sgd_acc ? 0 : 1;
}

}  // namespace splitmed::bench
