// Wire-compression ablation (extension): int8 quantization of activations
// and cut gradients vs the paper's f32 wire. Measures real traffic and
// accuracy end-to-end.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 10;
constexpr std::int64_t kRounds = 100;

}  // namespace

int main() {
  std::cout << "=== Wire-dtype ablation (vgg-mini, " << kRounds
            << " rounds, K=4) ===\n\n";

  const auto train = make_cifar(512, kClasses, 42);
  const auto test = make_cifar_test(128, kClasses, 512);
  Rng prng(5);
  const auto partition = data::partition_zipf(train.size(), 4, 0.8, prng);
  const auto builder = mini_builder("vgg-mini", kClasses);

  Table table({"wire dtype", "bytes total", "bytes/round", "WAN time",
               "final acc"});
  for (const auto dtype : {core::WireDtype::kF32, core::WireDtype::kI8}) {
    core::SplitConfig cfg;
    cfg.total_batch = 32;
    cfg.rounds = kRounds;
    cfg.eval_every = kRounds;
    cfg.sgd = comparison_sgd();
    cfg.wire_dtype = dtype;
    core::SplitTrainer trainer(builder, train, partition, test, cfg);
    const auto report = trainer.run();
    table.add_row({core::wire_dtype_name(dtype),
                   format_bytes(report.total_bytes),
                   format_bytes(report.total_bytes / kRounds),
                   format_duration(report.total_sim_seconds),
                   format_percent(report.final_accuracy)});
  }
  table.print(std::cout);
  std::cout << "\nreading: int8 wire encoding cuts the dominant messages "
               "~4x (logits stay f32) with little accuracy change — stacked "
               "on the split protocol it widens the gap to Large-Scale SGD "
               "further.\n"
            << std::endl;
  return 0;
}
