// Accuracy-vs-bytes frontier across the negotiated wire codecs (extension):
// f32 (the paper's wire), f16 (2x payload compression), and symmetric int8
// (~4x). Measures real traffic and accuracy end-to-end; the f32 row is the
// baseline every ratio is reported against.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 10;
constexpr std::int64_t kRounds = 100;

std::string format_ratio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", ratio);
  return buf;
}

}  // namespace

int main() {
  std::cout << "=== Wire-codec frontier (vgg-mini, " << kRounds
            << " rounds, K=4) ===\n\n";

  const auto train = make_cifar(512, kClasses, 42);
  const auto test = make_cifar_test(128, kClasses, 512);
  Rng prng(5);
  const auto partition = data::partition_zipf(train.size(), 4, 0.8, prng);
  const auto builder = mini_builder("vgg-mini", kClasses);

  Table table({"codec", "bytes total", "bytes/round", "vs f32", "WAN time",
               "final acc"});
  std::uint64_t f32_bytes = 0;
  for (const auto codec :
       {WireCodec::kF32, WireCodec::kF16, WireCodec::kI8}) {
    core::SplitConfig cfg;
    cfg.total_batch = 32;
    cfg.rounds = kRounds;
    cfg.eval_every = kRounds;
    cfg.sgd = comparison_sgd();
    cfg.codec = codec;
    core::SplitTrainer trainer(builder, train, partition, test, cfg);
    const auto report = trainer.run();
    if (codec == WireCodec::kF32) f32_bytes = report.total_bytes;
    const double ratio = report.total_bytes > 0
                             ? static_cast<double>(f32_bytes) /
                                   static_cast<double>(report.total_bytes)
                             : 0.0;
    table.add_row({wire_codec_name(codec), format_bytes(report.total_bytes),
                   format_bytes(report.total_bytes / kRounds),
                   format_ratio(ratio), format_duration(report.total_sim_seconds),
                   format_percent(report.final_accuracy)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the frontier is monotone — f16 halves and int8 "
               "quarters the dominant activation/cut-grad payloads (logits "
               "stay f32, so total ratios land just under 2x/4x) with little "
               "accuracy change at this scale. Stacked on the split protocol "
               "it widens the gap to Large-Scale SGD further.\n"
            << std::endl;
  return 0;
}
