// Crash-injection harness for the full-state checkpoint (docs/CHECKPOINT.md).
//
// Runs one golden (uninterrupted) split-training run, then replays the same
// configuration under adversarial "kills" — a crash right after a save, a
// crash mid-round (work since the last checkpoint lost), a crash DURING a
// save (simulated by truncating the newest manifest), and the same under WAN
// fault injection — and verifies that every recovered run reproduces the
// golden run's wire-byte series and loss/accuracy curves EXACTLY (bitwise
// doubles, not tolerances). A crash is simulated by destroying the trainer:
// in-process state dies, only the checkpoint directory survives, exactly
// what a real kill -9 leaves behind.
//
//   build/bench/crash_resume [--rounds=12] [--every=4] [--dir=...] [--keep]
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/flags.hpp"
#include "src/core/checkpoint.hpp"
#include "src/data/partition.hpp"

namespace splitmed::bench {
namespace {

namespace fs = std::filesystem;

struct HarnessConfig {
  std::int64_t rounds = 12;
  std::int64_t every = 4;  // checkpoint cadence
  std::string dir = "crash_resume_scratch";
  bool keep = false;
};

struct Scenario {
  std::string name;
  bool passed = false;
  std::string detail;
};

core::SplitConfig train_config(std::int64_t rounds, bool faulted) {
  core::SplitConfig cfg;
  cfg.total_batch = 12;
  cfg.rounds = rounds;
  cfg.eval_every = 1;  // per-round curve points = per-round comparison grid
  cfg.sgd.learning_rate = 0.02F;
  cfg.sgd.momentum = 0.5F;
  cfg.seed = 123;
  if (faulted) {
    cfg.faults.drop_rate = 0.05;
    cfg.faults.duplicate_rate = 0.05;
    cfg.faults.corrupt_rate = 0.05;
    cfg.faults.delay_spike_rate = 0.02;
    cfg.faults.delay_spike_sec = 2.0;
    cfg.recovery.timeout_sec = 5.0;
    cfg.recovery.backoff = 1.0;
    cfg.recovery.max_retries = 2;
  }
  return cfg;
}

metrics::TrainReport run(const core::SplitConfig& cfg) {
  const auto train = make_cifar(96, 4, 42, /*image_size=*/8, 0,
                                /*noise_stddev=*/0.1F);
  const auto test = make_cifar(32, 4, 42, /*image_size=*/8,
                               /*index_offset=*/96, /*noise_stddev=*/0.1F);
  Rng prng(1);
  const auto partition = data::partition_iid(train.size(), 3, prng);
  core::SplitTrainer trainer(mini_builder("mlp", 4, 8), train, partition,
                             test, cfg);
  return trainer.run();
}

/// Bitwise curve comparison; returns a diff description ("" = identical).
std::string compare(const metrics::TrainReport& golden,
                    const metrics::TrainReport& got) {
  if (golden.curve.size() != got.curve.size()) {
    return "curve has " + std::to_string(got.curve.size()) + " points, golden " +
           std::to_string(golden.curve.size());
  }
  for (std::size_t i = 0; i < golden.curve.size(); ++i) {
    const auto& g = golden.curve[i];
    const auto& r = got.curve[i];
    if (g.cumulative_bytes != r.cumulative_bytes) {
      return "byte series diverges at point " + std::to_string(i);
    }
    if (g.train_loss != r.train_loss || g.test_accuracy != r.test_accuracy ||
        g.sim_seconds != r.sim_seconds) {
      return "loss/accuracy/time fingerprint diverges at point " +
             std::to_string(i);
    }
  }
  if (golden.final_accuracy != got.final_accuracy) {
    return "final accuracy differs";
  }
  return "";
}

void truncate_file(const fs::path& path, std::size_t keep_fraction_percent) {
  std::vector<char> image;
  {
    std::ifstream in(path, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(image.data(), static_cast<std::streamsize>(
                              image.size() * keep_fraction_percent / 100));
}

/// Crash scenario: train `crash_after` rounds with checkpoints, destroy the
/// trainer, resume from `dir`, finish, compare against golden.
Scenario crash_and_resume(const std::string& name, const HarnessConfig& hc,
                          const metrics::TrainReport& golden, bool faulted,
                          std::int64_t crash_after,
                          const std::function<void(const fs::path&)>& sabotage) {
  Scenario s{name};
  const fs::path dir = fs::path(hc.dir) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    auto cfg = train_config(crash_after, faulted);
    cfg.checkpoint_every = hc.every;
    cfg.checkpoint_dir = dir.string();
    // The flight recorder rides along on every crash run: when the trainer
    // dies (or a ProtocolError fires first), the last protocol events land
    // next to the checkpoints as a post-mortem. Observability is bitwise
    // inert, so the recovered curves still compare against an
    // un-instrumented golden run.
    cfg.obs.enabled = true;
    cfg.obs.flight_dump_path = (dir / "postmortem_kill.log").string();
    (void)run(cfg);  // the trainer dies here — the "kill"
  }
  if (sabotage) sabotage(dir);
  auto cfg = train_config(hc.rounds, faulted);
  cfg.resume_from = dir.string();
  cfg.obs.enabled = true;
  cfg.obs.flight_dump_path = (dir / "postmortem_resume.log").string();
  const auto resumed = run(cfg);
  s.detail = compare(golden, resumed);
  s.passed = s.detail.empty();
  if (!hc.keep) fs::remove_all(dir);
  return s;
}

int harness_main(const HarnessConfig& hc) {
  std::cout << "=== crash/resume harness: " << hc.rounds
            << " rounds, checkpoint every " << hc.every << " ===\n"
            << "every scenario must reproduce the uninterrupted run's byte\n"
               "series and curves bitwise after recovery\n\n";

  const auto golden = run(train_config(hc.rounds, false));
  const auto golden_faulted = run(train_config(hc.rounds, true));
  std::vector<Scenario> scenarios;

  // Kill immediately after a completed save: nothing is lost, the resumed
  // run continues from the exact round the checkpoint stamped.
  const std::int64_t last_save = (hc.rounds / hc.every) * hc.every;
  scenarios.push_back(crash_and_resume("kill_post_save", hc, golden, false,
                                       hc.every, nullptr));

  // Kill mid-round, past the last checkpoint: the rounds since it are lost
  // and RE-EXECUTED on resume — and must replay to the same bytes.
  scenarios.push_back(crash_and_resume(
      "kill_mid_round", hc, golden, false,
      std::min<std::int64_t>(hc.every + hc.every / 2 + 1, hc.rounds),
      nullptr));

  // Kill DURING the save of the newest checkpoint: its manifest is torn, so
  // recovery must fall back to the previous complete round and still land
  // on the golden curve.
  scenarios.push_back(crash_and_resume(
      "kill_during_save", hc, golden, false, 2 * hc.every,
      [&](const fs::path& dir) {
        truncate_file(dir / core::checkpoint_round_dirname(
                                static_cast<std::uint64_t>(2 * hc.every)) /
                          core::kManifestFile,
                      50);
      }));

  // Manifest never published at all (crash between node files and rename).
  scenarios.push_back(crash_and_resume(
      "manifest_never_landed", hc, golden, false, 2 * hc.every,
      [&](const fs::path& dir) {
        fs::remove(dir / core::checkpoint_round_dirname(
                             static_cast<std::uint64_t>(2 * hc.every)) /
                   core::kManifestFile);
      }));

  // The same post-save kill with WAN fault injection active: in-flight
  // duplicates, the fault Rng, and retransmit accounting all ride along.
  scenarios.push_back(crash_and_resume("kill_post_save_faulted_wan", hc,
                                       golden_faulted, true, hc.every,
                                       nullptr));

  std::cout << std::left << std::setw(28) << "scenario" << "result\n"
            << std::string(44, '-') << "\n";
  bool all = true;
  for (const auto& s : scenarios) {
    std::cout << std::left << std::setw(28) << s.name
              << (s.passed ? "PASS" : "FAIL — " + s.detail) << "\n";
    all &= s.passed;
  }
  std::cout << "\n"
            << (all ? "all scenarios recovered bitwise — crash recovery holds"
                    : "RECOVERY BROKEN: a resumed run diverged from golden")
            << "\n(last checkpointed round in this config: " << last_save
            << ")\n";
  if (hc.keep) {
    std::cout << "post-mortem flight-recorder dumps kept next to each "
                 "scenario's checkpoints (postmortem_kill.log / "
                 "postmortem_resume.log under " << hc.dir << ")\n";
  }
  if (!hc.keep) fs::remove_all(hc.dir);
  return all ? 0 : 1;
}

}  // namespace
}  // namespace splitmed::bench

int main(int argc, char** argv) {
  splitmed::Flags flags(argc, argv);
  splitmed::bench::HarnessConfig hc;
  hc.rounds = flags.get_int("rounds", hc.rounds);
  hc.every = flags.get_int("every", hc.every);
  hc.dir = flags.get_string("dir", hc.dir);
  hc.keep = flags.get_bool("keep", hc.keep);
  flags.validate_no_unknown();
  if (hc.every <= 0 || hc.rounds < hc.every) {
    std::cerr << "need --every > 0 and --rounds >= --every\n";
    return 2;
  }
  return splitmed::bench::harness_main(hc);
}
