// §II bandwidth-vs-depth claim: "this problem is manifested further when the
// model becomes deeper and larger". Weight-exchange protocols (Large-Scale
// SGD, FedAvg) pay per parameter, so their per-step cost grows with depth;
// the split protocol pays per cut activation, which is depth-independent.
// Analytic sweep across the VGG/ResNet families at paper scale.
#include <iostream>

#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/models/factory.hpp"
#include "src/models/model_stats.hpp"

int main() {
  using namespace splitmed;
  constexpr std::int64_t kBatch = 128;
  constexpr std::int64_t kPlatforms = 4;

  std::cout << "=== Communication per step vs model depth (analytic, batch "
            << kBatch << ", K=" << kPlatforms << ") ===\n\n";

  Table table({"model", "params", "split bytes/step", "sync-SGD bytes/step",
               "fedavg bytes/round", "SGD/split"});
  for (const std::string& name :
       {"vgg11", "vgg13", "vgg16", "resnet20", "resnet32", "resnet18"}) {
    models::FactoryConfig cfg;
    cfg.name = name;
    cfg.image_size = 32;
    cfg.num_classes = 10;
    auto model = models::build_model(cfg);
    auto stats = models::ModelStats::analyze(model);
    const auto split = stats.split_step_bytes_uniform(kBatch, kPlatforms);
    const auto sgd = stats.syncsgd_step_bytes(kPlatforms);
    table.add_row(
        {name,
         format_bytes(static_cast<std::uint64_t>(stats.total_params) * 4),
         format_bytes(split), format_bytes(sgd),
         format_bytes(stats.fedavg_round_bytes(kPlatforms)),
         format_fixed(static_cast<double>(sgd) / static_cast<double>(split),
                      1) +
             "x"});
  }
  table.print(std::cout);
  std::cout << "\nreading: within each family, deeper models widen the gap "
               "in the split framework's favour — the paper's motivation for "
               "splitting rather than exchanging weights.\n"
            << std::endl;
  return 0;
}
