// §II bandwidth-vs-depth claim: "this problem is manifested further when the
// model becomes deeper and larger". Weight-exchange protocols (Large-Scale
// SGD, FedAvg) pay per parameter, so their per-step cost grows with depth;
// the split protocol pays per cut activation, which is depth-independent.
// Analytic sweep across the VGG/ResNet families at paper scale, plus a
// MEASURED sweep of the execution planner's memory claim: with lifetime-
// colored slab reuse, peak workspace bytes per inference step stay flat in
// depth instead of growing with it.
#include <chrono>
#include <iostream>

#include "src/common/aligned.hpp"
#include "src/common/format.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"
#include "src/common/thread_pool.hpp"
#include "src/models/factory.hpp"
#include "src/models/model_stats.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/plan.hpp"
#include "src/nn/sequential.hpp"
#include "src/tensor/workspace.hpp"

namespace {

// One measured point: a depth-N conv→relu chain run through infer() with
// the planner on or off. Returns {step-peak arena bytes, peak live
// aligned-heap bytes, wall microseconds} for one steady-state step.
struct DepthPoint {
  std::size_t arena_peak = 0;
  std::size_t heap_peak = 0;
  long long micros = 0;
};

DepthPoint measure_depth(int depth, bool planner) {
  using namespace splitmed;
  nn::set_planner_enabled(planner);
  Rng rng(11);
  nn::Sequential seq;
  for (int i = 0; i < depth; ++i) {
    seq.emplace<nn::Conv2d>(8, 8, 3, 1, 1, rng);
    seq.emplace<nn::ReLU>();
  }
  const Tensor x = Tensor::normal(Shape{4, 8, 16, 16}, rng);
  (void)seq.infer(x);  // warm-up: arena grows to its high-water mark
  ws::reset_step_peak();
  reset_aligned_peak_bytes();
  const auto t0 = std::chrono::steady_clock::now();
  Tensor y = seq.infer(x);
  const auto t1 = std::chrono::steady_clock::now();
  nn::set_planner_enabled(true);
  return {ws::global_step_peak_bytes(), aligned_peak_bytes(),
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()};
}

}  // namespace

int main() {
  using namespace splitmed;
  constexpr std::int64_t kBatch = 128;
  constexpr std::int64_t kPlatforms = 4;

  std::cout << "=== Communication per step vs model depth (analytic, batch "
            << kBatch << ", K=" << kPlatforms << ") ===\n\n";

  Table table({"model", "params", "split bytes/step", "sync-SGD bytes/step",
               "fedavg bytes/round", "SGD/split"});
  for (const std::string& name :
       {"vgg11", "vgg13", "vgg16", "resnet20", "resnet32", "resnet18"}) {
    models::FactoryConfig cfg;
    cfg.name = name;
    cfg.image_size = 32;
    cfg.num_classes = 10;
    auto model = models::build_model(cfg);
    auto stats = models::ModelStats::analyze(model);
    const auto split = stats.split_step_bytes_uniform(kBatch, kPlatforms);
    const auto sgd = stats.syncsgd_step_bytes(kPlatforms);
    table.add_row(
        {name,
         format_bytes(static_cast<std::uint64_t>(stats.total_params) * 4),
         format_bytes(split), format_bytes(sgd),
         format_bytes(stats.fedavg_round_bytes(kPlatforms)),
         format_fixed(static_cast<double>(sgd) / static_cast<double>(split),
                      1) +
             "x"});
  }
  table.print(std::cout);
  std::cout << "\nreading: within each family, deeper models widen the gap "
               "in the split framework's favour — the paper's motivation for "
               "splitting rather than exchanging weights.\n"
            << std::endl;

  std::cout << "=== Peak workspace bytes vs depth (measured, conv3x3/8ch "
               "chain, batch 4, 1 thread) ===\n\n";
  set_global_threads(1);
  Table mem({"depth", "planner", "arena peak/step", "heap peak", "step us"});
  for (const int depth : {2, 4, 8, 16}) {
    for (const bool planner : {true, false}) {
      const DepthPoint p = measure_depth(depth, planner);
      mem.add_row({std::to_string(depth), planner ? "on" : "off",
                   format_bytes(p.arena_peak), format_bytes(p.heap_peak),
                   std::to_string(p.micros)});
    }
  }
  mem.print(std::cout);
  std::cout << "\nreading: with the planner on, fused groups chain through "
               "2 lifetime-colored arena slabs, so the per-step arena peak "
               "is FLAT from depth 4 on; with it off, every intermediate is "
               "a heap tensor and the only arena use is per-layer scratch.\n"
            << std::endl;
  return 0;
}
