// WAN fault sweep (extension): split training under seeded link faults —
// drops, duplicates, corruption, and delay spikes — with the protocol-level
// recovery layer (CRC trailers, timeouts, retransmissions, idempotent
// replay) keeping training alive. Sweeps fault intensity and reports the
// goodput cost: wire bytes vs bytes that actually advanced the protocol.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "src/common/flags.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 4;
constexpr std::int64_t kPlatforms = 4;
constexpr std::int64_t kRounds = 40;

/// "trace.json" + rate 0.05 -> "trace_r5.json": one output file per sweep
/// row, since each row is its own training run (and ObsSession).
std::string rate_suffixed(const std::string& path, double rate) {
  if (path.empty()) return path;
  const std::string tag =
      "_r" + std::to_string(static_cast<int>(rate * 100.0 + 0.5));
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  splitmed::Flags flags(argc, argv);
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string metrics_out = flags.get_string("metrics-out", "");
  const std::string attribution_out = flags.get_string("attribution-out", "");
  const std::int64_t trace_detail = flags.get_int("trace-detail", 1);
  const splitmed::WireCodec codec =
      splitmed::parse_wire_codec(flags.get_string("codec", "f32"));
  flags.validate_no_unknown();

  std::cout << "=== WAN fault injection sweep (mlp, " << kPlatforms
            << " platforms, " << kRounds << " rounds, heterogeneous WAN, "
            << splitmed::wire_codec_name(codec) << " wire) ===\n\n";

  const auto train = make_cifar(384, kClasses, 42, 8, 0, 0.4F);
  const auto test = make_cifar(96, kClasses, 42, 8, 384, 0.4F);
  const auto builder = mini_builder("mlp", kClasses, 8);
  Rng prng(7);
  const auto partition = data::partition_iid(train.size(), kPlatforms, prng);

  Table table({"fault rate", "bytes", "goodput", "retrans", "dropped",
               "corrupt", "skipped", "ex lost", "WAN time", "final acc"});
  for (const double rate : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    core::SplitConfig cfg;
    cfg.codec = codec;
    cfg.total_batch = 4 * kPlatforms;
    cfg.rounds = kRounds;
    cfg.eval_every = kRounds;
    cfg.sgd = comparison_sgd();
    cfg.faults.drop_rate = rate;
    cfg.faults.duplicate_rate = rate;
    cfg.faults.corrupt_rate = rate;
    cfg.faults.delay_spike_rate = rate;
    cfg.faults.delay_spike_sec = 2.0;
    if (!trace_out.empty() || !metrics_out.empty() ||
        !attribution_out.empty()) {
      cfg.obs.enabled = true;
      cfg.obs.trace_path = rate_suffixed(trace_out, rate);
      cfg.obs.metrics_path = rate_suffixed(metrics_out, rate);
      cfg.obs.attribution_path = rate_suffixed(attribution_out, rate);
      cfg.obs.detail = static_cast<int>(trace_detail);
    }
    core::SplitTrainer trainer(builder, train, partition, test, cfg);
    const auto report = trainer.run();
    const auto& stats = trainer.network().stats();
    table.add_row({format_percent(rate, 0), format_bytes(report.total_bytes),
                   format_bytes(stats.goodput_bytes()),
                   std::to_string(stats.retransmits()),
                   std::to_string(stats.dropped()),
                   std::to_string(stats.corrupted()),
                   std::to_string(report.skipped_steps),
                   std::to_string(report.examples_lost),
                   format_duration(report.total_sim_seconds),
                   format_percent(report.final_accuracy)});
  }
  table.print(std::cout);
  if (!trace_out.empty()) {
    std::cout << "\ntraces written per fault rate (e.g. "
              << rate_suffixed(trace_out, 0.05) << ")\n";
  }
  if (!metrics_out.empty()) {
    std::cout << (trace_out.empty() ? "\n" : "")
              << "metrics snapshots written per fault rate (e.g. "
              << rate_suffixed(metrics_out, 0.05) << ")\n";
  }
  if (!attribution_out.empty()) {
    std::cout << "\nper-round attribution written per fault rate (e.g. "
              << rate_suffixed(attribution_out, 0.05)
              << "; render with scripts/trace_report.py)\n";
  }
  std::cout << "\nreading: every row is bit-reproducible from the seed. "
               "Recovery holds accuracy near the fault-free run while the "
               "wire-bytes-to-goodput gap widens with the fault rate — the "
               "WAN tax is retransmissions and discarded frames, not lost "
               "learning. Skipped steps stay rare until drop rates are "
               "extreme (a hospital must lose a frame on every retry to "
               "miss a round).\n"
            << std::endl;
  return 0;
}
