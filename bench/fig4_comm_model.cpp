// Fig. 4 at paper scale (analytic): exact wire bytes for full-size VGG-16 /
// ResNet-18 / ResNet-20 on CIFAR-10/100 shapes (50 000 training images,
// global batch 128, K = 4 platforms).
//
// Communication volume is a deterministic function of architecture and
// schedule, so these numbers are exact without GPU training (see DESIGN.md
// substitution table). The measured minis (fig4_vgg / fig4_resnet) validate
// that the same byte model matches the wire exactly.
#include <iostream>

#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/models/factory.hpp"
#include "src/models/model_stats.hpp"

namespace {

using namespace splitmed;

struct Row {
  std::string model;
  std::int64_t classes;
};

constexpr std::int64_t kDataset = 50'000;
constexpr std::int64_t kBatch = 128;
constexpr std::int64_t kPlatforms = 4;
constexpr std::int64_t kEpochs = 10;

}  // namespace

int main() {
  std::cout << "=== Fig. 4, paper scale (analytic byte model) ===\n"
            << "CIFAR shapes: 50k train images, batch " << kBatch << ", K="
            << kPlatforms << " platforms, " << kEpochs << " epochs\n\n";

  Table table({"model", "dataset", "params", "cut act/img", "split GB",
               "sync-SGD GB", "fedavg GB (1 rnd/epoch)",
               "cyclic GB (1 cyc/epoch)", "SGD/split"});

  for (const Row& row : {Row{"vgg16", 10}, Row{"vgg16", 100},
                         Row{"resnet18", 10}, Row{"resnet18", 100},
                         Row{"resnet20", 10}, Row{"resnet20", 100}}) {
    models::FactoryConfig cfg;
    cfg.name = row.model;
    cfg.image_size = 32;
    cfg.num_classes = row.classes;
    auto model = models::build_model(cfg);
    auto stats = models::ModelStats::analyze(model);

    const std::int64_t steps = (kDataset + kBatch - 1) / kBatch;
    const std::uint64_t split =
        kEpochs * stats.split_epoch_bytes(kDataset, kPlatforms, steps);
    const std::uint64_t sgd =
        kEpochs * stats.syncsgd_epoch_bytes(kDataset, kBatch, kPlatforms);
    const std::uint64_t fedavg = kEpochs * stats.fedavg_round_bytes(kPlatforms);
    const std::uint64_t cyclic = kEpochs * stats.cyclic_cycle_bytes(kPlatforms);

    table.add_row(
        {row.model, "cifar-" + std::to_string(row.classes),
         format_bytes(static_cast<std::uint64_t>(stats.total_params) * 4),
         format_bytes(static_cast<std::uint64_t>(
                          stats.cut_activation_chw.numel()) *
                      4),
         format_fixed(static_cast<double>(split) / 1e9, 2),
         format_fixed(static_cast<double>(sgd) / 1e9, 2),
         format_fixed(static_cast<double>(fedavg) / 1e9, 2),
         format_fixed(static_cast<double>(cyclic) / 1e9, 2),
         format_fixed(static_cast<double>(sgd) / static_cast<double>(split),
                      2) +
             "x"});
  }
  table.print(std::cout);

  std::cout
      << "\npaper context: Fig. 4 reports ~0.8 GB (proposed) vs ~2 GB "
         "(Large-Scale SGD) for VGG and ~0.5 GB vs ~1.5 GB for ResNet over "
         "a full training run.\nShape check: the proposed framework wins "
         "whenever parameter mass dominates cut-activation volume — 16x for "
         "VGG-16 and 5.3x for ResNet-18 (the paper's regime). The tiny "
         "ResNet-20 (1 MB of weights) inverts the ordering (~0.5x): a "
         "crossover the paper does not report, exposed by the analytic "
         "model.\ncyclic/fedavg move few bytes per EPOCH but learn from "
         "stale weights a few times per epoch (their accuracy-per-byte is "
         "bounded by staleness, not bandwidth — see the measured fig4_vgg / "
         "fig4_resnet runs); Large-Scale SGD is the paper's apples-to-apples "
         "per-step baseline.\n"
      << std::endl;
  return 0;
}
