// Scaling extension: bytes and simulated WAN time per round as the number of
// geo-distributed platforms K grows (fixed global data and batch). Measured
// end-to-end through the simulated hospital WAN.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/baselines/sync_sgd.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 4;
constexpr std::int64_t kTrain = 384;
constexpr std::int64_t kRounds = 10;

}  // namespace

int main() {
  std::cout << "=== Scaling with platform count (measured, " << kRounds
            << " rounds, heterogeneous hospital WAN) ===\n\n";

  const auto train = make_cifar(kTrain, kClasses, 42, 8, 0, /*noise_stddev=*/0.4F);
  const auto test = make_cifar(64, kClasses, 42, 8, /*index_offset=*/kTrain, /*noise_stddev=*/0.4F);

  Table table({"K", "split bytes/round", "split WAN s/round",
               "sync-SGD bytes/step", "sync-SGD WAN s/step"});
  for (const std::int64_t k : {2L, 4L, 8L}) {
    Rng prng(3);
    const auto partition = data::partition_iid(train.size(), k, prng);
    const auto builder = mini_builder("mlp", kClasses, 8);

    core::SplitConfig scfg;
    scfg.total_batch = 32;
    scfg.rounds = kRounds;
    scfg.eval_every = kRounds;
    scfg.sgd = comparison_sgd();
    core::SplitTrainer split(builder, train, partition, test, scfg);
    const auto split_report = split.run();

    baselines::BaselineConfig bcfg;
    bcfg.total_batch = 32;
    bcfg.steps = kRounds;
    bcfg.eval_every = kRounds;
    bcfg.sgd = comparison_sgd();
    baselines::SyncSgdTrainer sgd(builder, train, partition, test, bcfg);
    const auto sgd_report = sgd.run();

    table.add_row(
        {std::to_string(k),
         format_bytes(split_report.total_bytes / kRounds),
         format_fixed(split_report.total_sim_seconds / kRounds, 3),
         format_bytes(sgd_report.total_bytes / kRounds),
         format_fixed(sgd_report.total_sim_seconds / kRounds, 3)});
  }
  table.print(std::cout);
  std::cout << "\nreading: split traffic per round is roughly K-independent "
               "(the global batch is fixed; only framing grows), while "
               "weight exchange grows linearly in K. Split WAN time per "
               "round grows with K because the paper's workflow serves "
               "platforms sequentially — a pipelining opportunity.\n"
            << std::endl;
  return 0;
}
