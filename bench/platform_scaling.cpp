// Scaling extension: how the round engine behaves as the number of
// geo-distributed platforms K grows into the thousands. For each K the sweep
// runs the event-driven schedules end-to-end through the simulated hospital
// WAN and reports, per round: protocol steps driven, wire bytes, simulated
// WAN seconds, and host wall milliseconds (the scheduler's own cost).
//
// Two rows per K:
//   overlapped  — every platform steps every round (a full drain barrier);
//                 work per round is O(K), so wall ms/round grows with K.
//   bounded(S1) — bounded staleness with participation ~ 32/K, i.e. a fixed
//                 number of ACTIVE platforms regardless of K. Wall ms/round
//                 staying near-flat while K grows 256x is the event-driven
//                 scheduler's point: cost scales with active events, not
//                 with the platform count.
//
// Flags:
//   --max-k N      largest K in the sweep (default 4096)
//   --rounds N     rounds per run (default 5)
//   --smoke        CI mode: single K=1000 sweep point, 3 rounds
//   --json-out F   machine-readable rows for scripts/bench_scaling.py
//   --codec NAME   wire codec for activation/cut-grad payloads (f32/f16/i8)
//   --attribution-out F  per-round critical-path attribution JSONL, one file
//                  per sweep row (suffixed _k<K>_<schedule>); render with
//                  scripts/trace_report.py
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 4;
constexpr std::int64_t kImage = 8;
/// Target active platforms per round for the bounded-staleness rows.
constexpr std::int64_t kActiveTarget = 32;

struct Row {
  std::int64_t k = 0;
  std::string schedule;
  double participation = 1.0;
  double steps_per_round = 0.0;
  double bytes_per_round = 0.0;
  double sim_s_per_round = 0.0;
  double wall_ms_per_round = 0.0;
};

/// "attr.jsonl" + k=256, tag "overlapped" -> "attr_k256_overlapped.jsonl":
/// every sweep row is its own training run (and ObsSession).
std::string attribution_path(const std::string& base, std::int64_t k,
                             const char* tag) {
  if (base.empty()) return base;
  const std::string suffix = "_k" + std::to_string(k) + "_" + tag;
  const std::size_t dot = base.rfind('.');
  if (dot == std::string::npos || dot == 0) return base + suffix;
  return base.substr(0, dot) + suffix + base.substr(dot);
}

Row run_one(const data::Dataset& train, const data::Dataset& test,
            std::int64_t k, std::int64_t rounds, core::Schedule schedule,
            double participation, const char* label, WireCodec codec,
            const std::string& attribution_out) {
  Rng prng(3);
  const auto partition = data::partition_iid(train.size(), k, prng);

  core::SplitConfig cfg;
  cfg.codec = codec;
  // One example per platform per round: per-platform payload stays fixed, so
  // bytes/round isolates the K-dependence of the protocol itself.
  cfg.total_batch = k;
  cfg.rounds = rounds;
  cfg.eval_every = rounds;
  cfg.eval_batch = 16;
  cfg.sgd = comparison_sgd();
  cfg.schedule = schedule;
  cfg.participation = participation;
  if (!attribution_out.empty()) {
    cfg.obs.enabled = true;
    cfg.obs.attribution_path = attribution_out;
  }

  core::SplitTrainer trainer(mini_builder("mlp", kClasses, kImage), train,
                             partition, test, cfg);
  Stopwatch wall;
  const auto report = trainer.run();
  const double run_ms = wall.milliseconds();
  // run() evaluated exactly once, at the final round (eval_every == rounds):
  // K composite-model test passes, identical work under every schedule.
  // Re-measure that eval now — same fully-warm state as the in-run one —
  // and subtract it so the wall column isolates the round engine.
  Stopwatch eval_watch;
  (void)trainer.evaluate();
  const double eval_ms = eval_watch.milliseconds();

  Row row;
  row.k = k;
  row.schedule = label;
  row.participation = participation;
  // 4 protocol messages per platform step; eval moves no frames.
  row.steps_per_round =
      static_cast<double>(trainer.network().stats().total_messages()) /
      (4.0 * static_cast<double>(rounds));
  row.bytes_per_round = static_cast<double>(report.total_bytes) /
                        static_cast<double>(rounds);
  row.sim_s_per_round = report.total_sim_seconds / static_cast<double>(rounds);
  row.wall_ms_per_round =
      std::max(0.0, run_ms - eval_ms) / static_cast<double>(rounds);
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                std::int64_t rounds) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return;
  }
  out << "{\n  \"rounds\": " << rounds << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"k\": " << r.k << ", \"schedule\": \"" << r.schedule
        << "\", \"participation\": " << r.participation
        << ", \"steps_per_round\": " << r.steps_per_round
        << ", \"bytes_per_round\": " << r.bytes_per_round
        << ", \"sim_s_per_round\": " << r.sim_s_per_round
        << ", \"wall_ms_per_round\": " << r.wall_ms_per_round << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << rows.size() << " rows to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t max_k = 4096;
  std::int64_t rounds = 5;
  bool smoke = false;
  std::string json_out;
  std::string attribution_out;
  WireCodec codec = WireCodec::kF32;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-k" && i + 1 < argc) {
      max_k = std::stoll(argv[++i]);
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::stoll(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--attribution-out" && i + 1 < argc) {
      attribution_out = argv[++i];
    } else if (arg == "--codec" && i + 1 < argc) {
      codec = parse_wire_codec(argv[++i]);
    } else {
      std::cerr << "usage: platform_scaling [--max-k N] [--rounds N] "
                   "[--smoke] [--json-out FILE] [--attribution-out FILE] "
                   "[--codec f32|f16|i8]\n";
      return 2;
    }
  }

  std::vector<std::int64_t> ks;
  if (smoke) {
    ks = {1000};
    rounds = 3;
  } else {
    for (std::int64_t k = 16; k <= max_k; k *= 4) ks.push_back(k);
    if (ks.empty() || ks.back() != max_k) ks.push_back(max_k);
  }

  std::cout << "=== Event-driven scheduler scaling with platform count ("
            << rounds << " rounds, heterogeneous hospital WAN) ===\n\n";

  // One dataset sized for the largest K (every platform needs >= 1 example);
  // shared across rows so only K and the schedule vary.
  const std::int64_t train_size = std::max<std::int64_t>(512, ks.back());
  const auto train =
      make_cifar(train_size, kClasses, 42, kImage, 0, /*noise_stddev=*/0.4F);
  const auto test = make_cifar(16, kClasses, 42, kImage,
                               /*index_offset=*/train_size,
                               /*noise_stddev=*/0.4F);

  Table table({"K", "schedule", "steps/round", "bytes/round", "sim s/round",
               "wall ms/round"});
  std::vector<Row> rows;
  for (const std::int64_t k : ks) {
    rows.push_back(run_one(train, test, k, rounds, core::Schedule::kOverlapped,
                           1.0, "overlapped", codec,
                           attribution_path(attribution_out, k,
                                            "overlapped")));
    // Fixed active set: ~kActiveTarget platforms sampled per round, late
    // completions fold in within one round of staleness.
    const double part =
        k <= kActiveTarget
            ? 1.0
            : static_cast<double>(kActiveTarget) / static_cast<double>(k);
    rows.push_back(run_one(train, test, k, rounds,
                           core::Schedule::kBoundedStaleness, part,
                           "bounded(S=1)", codec,
                           attribution_path(attribution_out, k, "bounded")));
    for (std::size_t i = rows.size() - 2; i < rows.size(); ++i) {
      const Row& r = rows[i];
      table.add_row({std::to_string(r.k), r.schedule,
                     format_fixed(r.steps_per_round, 1),
                     format_bytes(static_cast<std::uint64_t>(r.bytes_per_round)),
                     format_fixed(r.sim_s_per_round, 3),
                     format_fixed(r.wall_ms_per_round, 2)});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nreading: overlapped rows drive K steps every round, so bytes, "
         "wall time, and simulated WAN time all grow linearly in K (overlap "
         "hides the uploads, but the shared server body still applies the K "
         "minibatch updates one after another — round-robin split learning). "
         "The bounded-staleness rows hold the ACTIVE set fixed (~"
      << kActiveTarget << " platforms/round): wall ms/round stays near-flat "
         "as K grows, because the event-driven scheduler's per-round cost is "
         "O(active events + log K), never O(K) polling.\n"
      << std::endl;

  if (!json_out.empty()) write_json(json_out, rows, rounds);
  return 0;
}
