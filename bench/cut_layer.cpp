// Cut-position ablation (the paper fixes the cut after L1): measured
// accuracy, bytes and platform-side parameter share as the cut moves deeper
// into vgg-mini. Trades platform compute + bytes against server knowledge.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/models/model_stats.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 10;
constexpr std::int64_t kRounds = 140;

}  // namespace

int main() {
  std::cout << "=== Cut-layer ablation (vgg-mini, measured, " << kRounds
            << " rounds) ===\n"
            << "paper's choice: cut after L1 (first conv + activation)\n\n";

  const auto train = make_cifar(512, kClasses, 42);
  const auto test = make_cifar_test(96, kClasses, /*train_examples=*/512);
  Rng prng(5);
  const auto partition = data::partition_iid(train.size(), 4, prng);
  const auto builder = mini_builder("vgg-mini", kClasses);

  Table table({"cut", "platform params", "act shape/img", "bytes total",
               "final acc"});
  for (const std::int64_t cut : {1L, 2L, 3L, 5L}) {
    auto probe = builder();
    auto stats = models::ModelStats::analyze(probe, cut);

    core::SplitConfig cfg;
    cfg.cut = cut;
    cfg.total_batch = 32;
    cfg.rounds = kRounds;
    cfg.eval_every = kRounds;
    cfg.sgd = comparison_sgd();
    core::SplitTrainer trainer(builder, train, partition, test, cfg);
    const auto report = trainer.run();

    table.add_row({std::to_string(cut) + (cut == 2 ? " (paper)" : ""),
                   std::to_string(stats.platform_params),
                   stats.cut_activation_chw.str(),
                   format_bytes(report.total_bytes),
                   format_percent(report.final_accuracy)});
  }
  table.print(std::cout);
  std::cout
      << "\nreading: cuts 1-3 keep the same 448 parameters on the platform "
         "(relu/pool add none), so accuracy is identical while bytes drop "
         "4x once the cut passes the pooling stage — an easy win the "
         "paper's fixed L1 cut leaves on the table. Cutting deeper (row 4) "
         "moves a whole conv layer onto the platforms, whose replicas see "
         "only local data and are never re-synchronized: accuracy "
         "collapses. The cut trades bytes, privacy, and shared learning "
         "against each other.\n"
      << std::endl;
  return 0;
}
