// Fig. 4 (ResNet curves): proposed split framework vs Large-Scale SGD (and
// FedAvg) at equal transmitted bytes, ResNet family on CIFAR-shaped data.
// Paper: proposed ~0.5 GB @ 75% accuracy vs Large-Scale SGD ~1.5 GB @ 10%.
#include "bench/fig4_runner.hpp"
#include "src/common/flags.hpp"

int main(int argc, char** argv) {
  splitmed::Flags flags(argc, argv);
  splitmed::bench::Fig4Config cfg;
  cfg.model = flags.get_string("model", "resnet-mini");
  cfg.classes = flags.get_int("classes", 10);
  cfg.platforms = flags.get_int("platforms", cfg.platforms);
  cfg.split_rounds = flags.get_int("rounds", 100);
  cfg.zipf_alpha = flags.get_double("zipf", cfg.zipf_alpha);
  cfg.threads = flags.get_int("threads", cfg.threads);
  cfg.checkpoint_every = flags.get_int("checkpoint-every", cfg.checkpoint_every);
  cfg.checkpoint_dir = flags.get_string("checkpoint-dir", cfg.checkpoint_dir);
  cfg.resume_from = flags.get_string("resume", cfg.resume_from);
  cfg.trace_out = flags.get_string("trace-out", cfg.trace_out);
  cfg.metrics_out = flags.get_string("metrics-out", cfg.metrics_out);
  cfg.attribution_out = flags.get_string("attribution-out", cfg.attribution_out);
  cfg.trace_detail = flags.get_int("trace-detail", cfg.trace_detail);
  cfg.codec = flags.get_string("codec", cfg.codec);
  flags.validate_no_unknown();
  cfg.paper_line =
      "ResNet + CIFAR-10/100: proposed 0.5 GB @ 75% vs Large-Scale SGD "
      "1.5 GB @ 10% (shape target: proposed wins at equal bytes)";
  cfg.csv_path = "fig4_resnet_curves.csv";
  return splitmed::bench::run_fig4(cfg);
}
