// §II data-imbalance ablation: the paper's mitigation sets s_k ∝ |D_k|.
// Sweeps imbalance severity (zipf alpha) and compares the proportional
// policy against the uniform control, plus local-only training as the
// motivating "each hospital trains alone" failure mode.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/baselines/local_only.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 4;
constexpr std::int64_t kTrain = 360;
constexpr std::int64_t kPlatforms = 4;
constexpr std::int64_t kRounds = 60;

double run_split(const data::Dataset& train, const data::Dataset& test,
                 const data::Partition& partition,
                 core::MinibatchPolicy policy, std::string* batches_out) {
  core::SplitConfig cfg;
  cfg.total_batch = 24;
  cfg.policy = policy;
  cfg.rounds = kRounds;
  cfg.eval_every = kRounds;
  cfg.sgd = comparison_sgd();
  core::SplitTrainer trainer(mini_builder("mlp", kClasses, 8), train,
                             partition, test, cfg);
  if (batches_out != nullptr) {
    std::string s;
    for (const auto b : trainer.minibatches()) {
      s += (s.empty() ? "" : "/") + std::to_string(b);
    }
    *batches_out = s;
  }
  return trainer.run().final_accuracy;
}

}  // namespace

int main() {
  std::cout << "=== Data-imbalance mitigation (paper §II) ===\n"
            << "K=" << kPlatforms << " hospitals, shard sizes ~ zipf(alpha); "
            << "minibatch policy uniform vs proportional (s_k ∝ |D_k|)\n\n";

  const auto train = make_cifar(kTrain, kClasses, 42, 8, 0, /*noise_stddev=*/0.4F);
  const auto test = make_cifar(96, kClasses, 42, 8, /*index_offset=*/kTrain, /*noise_stddev=*/0.4F);

  Table table({"zipf alpha", "shard sizes", "s_k (proportional)",
               "acc uniform", "acc proportional", "acc local-only (min..max)"});

  for (const double alpha : {0.0, 1.0, 2.0}) {
    Rng prng(11);
    const auto partition =
        data::partition_zipf(train.size(), kPlatforms, alpha, prng);
    std::string shard_sizes;
    for (const auto& shard : partition) {
      shard_sizes += (shard_sizes.empty() ? "" : "/") +
                     std::to_string(shard.size());
    }

    std::string prop_batches;
    const double uniform_acc =
        run_split(train, test, partition, core::MinibatchPolicy::kUniform,
                  nullptr);
    const double prop_acc =
        run_split(train, test, partition,
                  core::MinibatchPolicy::kProportional, &prop_batches);

    baselines::BaselineConfig local_cfg;
    local_cfg.total_batch = 24;
    local_cfg.steps = kRounds;
    local_cfg.eval_every = kRounds;
    local_cfg.sgd = comparison_sgd();
    baselines::LocalOnlyTrainer local(mini_builder("mlp", kClasses, 8), train,
                                      partition, test, local_cfg);
    const auto local_report = local.run();

    table.add_row({format_fixed(alpha, 1), shard_sizes, prop_batches,
                   format_percent(uniform_acc), format_percent(prop_acc),
                   format_percent(local_report.min_accuracy) + " .. " +
                       format_percent(local_report.max_accuracy)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the split framework (either policy) avoids the "
               "local-only accuracy floor of small hospitals; the "
               "proportional policy keeps every example's sampling rate "
               "equal under imbalance (paper's mitigation).\n"
            << std::endl;
  return 0;
}
