// §II privacy claim, quantified: the paper argues the server "cannot look at
// the original data" because only L1 outputs are shared. This bench measures
// how much those outputs actually reveal, as a function of where the cut
// falls: distance correlation between inputs and smashed data, and the MSE
// of a gradient-descent reconstruction attack by an honest-but-curious
// server that knows the L1 weights.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"
#include "src/core/split_model.hpp"
#include "src/models/model_stats.hpp"
#include "src/privacy/distance_correlation.hpp"
#include "src/privacy/reconstruction.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 10;
constexpr std::int64_t kSamples = 24;

}  // namespace

int main() {
  std::cout << "=== Privacy leakage vs cut depth (vgg-mini) ===\n"
            << "attack: server inverts smashed data by gradient descent on "
               "the inputs (knows L1 weights — worst case)\n\n";

  const auto data = make_cifar(kSamples, kClasses, 42);
  std::vector<std::int64_t> idx(kSamples);
  for (std::int64_t i = 0; i < kSamples; ++i) idx[i] = i;
  const Tensor x = data.batch_images(idx);

  Table table({"cut (layers on platform)", "smashed shape/img",
               "act bytes/img", "dCor(x, smashed)", "recon MSE",
               "input variance"});

  // Input variance = the MSE a knows-nothing attacker achieves by guessing
  // the mean; reconstruction MSE well below it means leakage.
  float mean = 0.0F;
  for (const float v : x.data()) mean += v;
  mean /= static_cast<float>(x.numel());
  float variance = 0.0F;
  for (const float v : x.data()) variance += (v - mean) * (v - mean);
  variance /= static_cast<float>(x.numel());

  for (const std::int64_t cut : {1L, 2L, 3L, 6L}) {
    auto model = mini_builder("vgg-mini", kClasses)();
    auto stats = models::ModelStats::analyze(model, cut);
    auto parts = core::split_at(std::move(model.net), cut);

    const Tensor smashed = parts.platform.forward(x, /*training=*/false);
    const double dcor = privacy::distance_correlation(x, smashed);

    privacy::ReconstructionOptions attack;
    attack.iterations = 200;
    const auto result = privacy::reconstruct_inputs(parts.platform, x, attack);

    std::string desc;
    for (std::size_t i = 0; i < static_cast<std::size_t>(cut); ++i) {
      desc += (desc.empty() ? "" : "+") + parts.platform.layer(i).name();
    }
    table.add_row(
        {std::to_string(cut) + " (" + desc + ")",
         stats.cut_activation_chw.str(),
         format_bytes(static_cast<std::uint64_t>(
                          stats.cut_activation_chw.numel()) *
                      4),
         format_fixed(dcor, 3), format_fixed(result.input_mse, 4),
         format_fixed(variance, 4)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the paper's cut (after L1 = conv+relu, row 2) "
               "still leaks under a white-box attack; deeper, compressive "
               "cuts (row 4, past pooling) reduce leakage toward the "
               "input-variance floor at the price of more platform compute. "
               "The framework's privacy rests on the server not knowing L1's "
               "weights.\n"
            << std::endl;
  return 0;
}
