// Platform churn sweep (extension): split training under the membership
// subsystem while seeded ChurnPlans crash hospitals, hold them offline for
// simulated minutes, and occasionally poison their updates. Sweeps the
// per-platform-round crash rate at two fleet sizes and reports what churn
// actually costs: accuracy, wire bytes, and the examples hospitals never
// contributed — plus the quarantine ledger showing the policing at work.
//
//   --smoke             one fast K=64 run with a scripted outage + poison
//                       spell; prints a machine-parseable `churn-smoke:`
//                       line for CI
//   --json-out F        machine-readable sweep rows
//   --rounds N          rounds per run (default 24; smoke always uses 8)
//   --attribution-out F per-round critical-path attribution JSONL, one file
//                       per run (suffixed _k<K>_r<rate%> in sweep mode);
//                       render with scripts/trace_report.py
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/flags.hpp"
#include "src/common/format.hpp"
#include "src/common/table.hpp"

namespace {

using namespace splitmed;
using namespace splitmed::bench;

constexpr std::int64_t kClasses = 4;
constexpr std::uint64_t kChurnSeed = 29;

struct Row {
  std::int64_t k = 0;
  double crash_rate = 0.0;
  std::int64_t crashes = 0;
  metrics::TrainReport report;
};

/// "attr.jsonl" + tag "_k16_r2" -> "attr_k16_r2.jsonl": every sweep row is
/// its own training run (and ObsSession), so each gets its own file.
std::string tag_suffixed(const std::string& path, const std::string& tag) {
  if (path.empty()) return path;
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

core::SplitConfig churn_config(std::int64_t platforms, std::int64_t rounds) {
  core::SplitConfig cfg;
  cfg.total_batch = 2 * platforms;
  cfg.rounds = rounds;
  cfg.eval_every = rounds;
  cfg.sgd = comparison_sgd();
  cfg.membership.enabled = true;
  // Outages last simulated minutes; the deadline must not throttle the
  // larger fleet's sequential round, so it is effectively off — deadline
  // economics have their own test (TightDeadlineDegradesToOneStepPerRound).
  cfg.membership.round_deadline_sec = 3600.0;
  // Fleet-scale policing: once training converges, most logit-grads are
  // tiny while a platform with a hard shard still sends an honest ~100x-1000x
  // outlier, so the default 8x-of-32 policy strikes out clean hospitals.
  // 1024x over a 128-deep history never fires on honest traffic here and
  // still sits three orders of magnitude under the 1e6x bombs.
  cfg.membership.norm_bomb_factor = 1024.0;
  cfg.membership.norm_window = 128;
  return cfg;
}

Row run_rate(std::int64_t platforms, double crash_rate, std::int64_t rounds,
             const std::string& attribution_out) {
  const auto train = make_cifar(4 * platforms, kClasses, 42, 8, 0, 0.4F);
  const auto test = make_cifar(96, kClasses, 42, 8, 4 * platforms, 0.4F);
  const auto builder = mini_builder("mlp", kClasses, 8);
  Rng prng(7);
  const auto partition =
      data::partition_iid(train.size(), static_cast<std::size_t>(platforms),
                          prng);

  core::SplitConfig cfg = churn_config(platforms, rounds);
  core::ChurnRates rates;
  rates.crash_rate = crash_rate;
  rates.mean_offline_sec = 30.0;
  rates.cold_fraction = 0.5;
  // A small constant poison rate keeps the quarantine machinery exercised
  // at every churn level; the sweep variable is the crash rate alone.
  rates.poison_rate = crash_rate > 0.0 ? 0.002 : 0.0;
  rates.poison_rounds = 4;
  cfg.churn = core::ChurnPlan::random(
      kChurnSeed, static_cast<std::size_t>(platforms), rounds, rates);
  if (!attribution_out.empty()) {
    cfg.obs.enabled = true;
    cfg.obs.attribution_path = attribution_out;
  }

  core::SplitTrainer trainer(builder, train, partition, test, cfg);
  Row row;
  row.k = platforms;
  row.crash_rate = crash_rate;
  row.crashes = static_cast<std::int64_t>(cfg.churn.crashes.size());
  row.report = trainer.run();
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                std::int64_t rounds) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return;
  }
  out << "{\n  \"rounds\": " << rounds << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"k\": " << r.k << ", \"crash_rate\": " << r.crash_rate
        << ", \"crashes\": " << r.crashes
        << ", \"final_accuracy\": " << r.report.final_accuracy
        << ", \"total_bytes\": " << r.report.total_bytes
        << ", \"examples_lost\": " << r.report.examples_lost
        << ", \"rejected_updates\": " << r.report.rejected_updates
        << ", \"quarantines\": " << r.report.quarantines
        << ", \"void_rounds\": " << r.report.void_rounds
        << ", \"deadline_misses\": " << r.report.deadline_misses << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << rows.size() << " rows to " << path << "\n";
}

/// CI smoke: a scripted plan (not rate-sampled) so the assertions are
/// deterministic — two crashes (one cold) plus a norm-bomb spell long
/// enough to strike the platform out. Prints one parseable line.
int run_smoke(std::int64_t rounds, const std::string& attribution_out) {
  constexpr std::int64_t kPlatforms = 64;
  const auto train = make_cifar(4 * kPlatforms, kClasses, 42, 8, 0, 0.4F);
  const auto test = make_cifar(96, kClasses, 42, 8, 4 * kPlatforms, 0.4F);
  const auto builder = mini_builder("mlp", kClasses, 8);
  Rng prng(7);
  const auto partition = data::partition_iid(train.size(), kPlatforms, prng);

  core::SplitConfig cfg = churn_config(kPlatforms, rounds);
  cfg.churn.crashes.push_back({5, 2, 20.0, core::RejoinMode::kWarm});
  cfg.churn.crashes.push_back({11, 3, 45.0, core::RejoinMode::kCold});
  cfg.churn.poisons.push_back(
      {23, 2, 4, core::PoisonKind::kNormBomb, 1.0e6F});
  if (!attribution_out.empty()) {
    cfg.obs.enabled = true;
    cfg.obs.attribution_path = attribution_out;
  }

  core::SplitTrainer trainer(builder, train, partition, test, cfg);
  const auto report = trainer.run();
  const double final_loss = report.curve.empty()
                                ? std::nan("")
                                : report.curve.back().train_loss;
  std::cout << "churn-smoke: quarantines=" << report.quarantines
            << " rejected_updates=" << report.rejected_updates
            << " examples_lost=" << report.examples_lost
            << " void_rounds=" << report.void_rounds
            << " final_loss=" << final_loss
            << " final_acc=" << report.final_accuracy << "\n";
  // CI greps the line above; the exit code is the hard gate.
  if (report.quarantines < 1) {
    std::cerr << "smoke FAILED: poison spell produced no quarantine\n";
    return 1;
  }
  if (!std::isfinite(final_loss)) {
    std::cerr << "smoke FAILED: final loss is not finite\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  splitmed::Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const std::string json_out = flags.get_string("json-out", "");
  const std::string attribution_out = flags.get_string("attribution-out", "");
  std::int64_t rounds = flags.get_int("rounds", 24);
  flags.validate_no_unknown();

  if (smoke) {
    return run_smoke(/*rounds=*/8, attribution_out);
  }

  std::cout << "=== Platform churn sweep (mlp, K in {16, 256}, " << rounds
            << " rounds, membership + quarantine on, seed " << kChurnSeed
            << ") ===\n\n";

  Table table({"K", "crash rate", "crashes", "bytes", "ex lost", "rejected",
               "quarantined", "void", "final acc"});
  std::vector<Row> rows;
  for (const std::int64_t k : {std::int64_t{16}, std::int64_t{256}}) {
    // At K=256 a full sweep round is 256 sequential protocol steps; a third
    // of the rounds keeps the bench in seconds at the same churn regimes.
    const std::int64_t r = k > 64 ? std::max<std::int64_t>(rounds / 3, 4)
                                  : rounds;
    for (const double rate : {0.0, 0.005, 0.02, 0.05}) {
      const std::string tag =
          "_k" + std::to_string(k) + "_r" +
          std::to_string(static_cast<int>(rate * 1000.0 + 0.5));
      Row row = run_rate(k, rate, r, tag_suffixed(attribution_out, tag));
      table.add_row({std::to_string(row.k), format_percent(rate, 1),
                     std::to_string(row.crashes),
                     format_bytes(row.report.total_bytes),
                     std::to_string(row.report.examples_lost),
                     std::to_string(row.report.rejected_updates),
                     std::to_string(row.report.quarantines),
                     std::to_string(row.report.void_rounds),
                     format_percent(row.report.final_accuracy)});
      rows.push_back(std::move(row));
    }
  }
  table.print(std::cout);
  if (!json_out.empty()) write_json(json_out, rows, rounds);
  if (!attribution_out.empty()) {
    std::cout << "\nper-round attribution written per run (e.g. "
              << tag_suffixed(attribution_out, "_k16_r20")
              << "; render with scripts/trace_report.py)\n";
  }
  std::cout << "\nreading: every row is bit-reproducible from the churn "
               "seed. examples_lost grows with the crash rate — outages are "
               "paid in silence, not corruption. The byte trend flips with "
               "fleet size: at K=16 an offline hospital's missing steps "
               "dominate (bytes drop with churn) while at K=256 the "
               "rejoin/heartbeat control traffic and cold-rejoin genesis L1 "
               "pulls outweigh the silence (bytes rise). Sampled poison "
               "spells are struck out wherever they run long enough, and "
               "accuracy degrades gracefully because every surviving round "
               "still aggregates the arrived quorum.\n"
            << std::endl;
  return 0;
}
