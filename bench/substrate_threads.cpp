// Thread-count sweep over the tensor substrate on the Fig. 4 VGG
// configuration: one platform/server training step (forward + loss backward
// + full backward) of the vgg-mini model, timed at --threads 1, 2, 4, ...
//
// Two things are reported per thread count:
//   * step latency and speedup vs the serial substrate, and
//   * a bitwise comparison of the logits and parameter state against the
//     serial run — the determinism contract (docs/PROTOCOL.md) requires
//     exact equality, not tolerance-equality.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/flags.hpp"
#include "src/common/format.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/table.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/loss.hpp"
#include "src/optim/sgd.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace splitmed;

struct StepResult {
  double ms_per_step = 0.0;
  Tensor logits;                       // last step's logits
  std::vector<float> param_checksum;   // raw copy of every parameter value
};

/// Runs `steps` full training steps of the model at the current global
/// thread count and returns latency plus the exact final state.
StepResult run_steps(const std::string& model_name, std::int64_t classes,
                     std::int64_t batch, std::int64_t steps,
                     std::int64_t warmup) {
  models::BuiltModel model = bench::mini_builder(model_name, classes)();
  optim::SgdOptions sgd_opt = bench::comparison_sgd();
  optim::Sgd opt(model.net.parameters(), sgd_opt);
  const auto train = bench::make_cifar(batch, classes, /*seed=*/42);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) idx[static_cast<std::size_t>(i)] = i;
  const Tensor images = train.batch_images(idx);
  const auto labels = train.batch_labels(idx);
  nn::SoftmaxCrossEntropy loss;

  StepResult out;
  Stopwatch watch;
  for (std::int64_t s = 0; s < warmup + steps; ++s) {
    if (s == warmup) watch.reset();
    model.net.zero_grad();
    out.logits = model.net.forward(images, /*training=*/true);
    loss.forward(out.logits, labels);
    model.net.backward(loss.backward());
    opt.step();
  }
  out.ms_per_step = watch.milliseconds() / static_cast<double>(steps);
  for (const nn::Parameter* p : model.net.parameters()) {
    const auto d = p->value.data();
    out.param_checksum.insert(out.param_checksum.end(), d.begin(), d.end());
  }
  return out;
}

bool bitwise_equal(const StepResult& a, const StepResult& b) {
  if (a.param_checksum.size() != b.param_checksum.size()) return false;
  for (std::size_t i = 0; i < a.param_checksum.size(); ++i) {
    if (a.param_checksum[i] != b.param_checksum[i]) return false;
  }
  const auto la = a.logits.data();
  const auto lb = b.logits.data();
  if (la.size() != lb.size()) return false;
  for (std::size_t i = 0; i < la.size(); ++i) {
    if (la[i] != lb[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string model = flags.get_string("model", "vgg-mini");
  const std::int64_t classes = flags.get_int("classes", 10);
  const std::int64_t batch = flags.get_int("batch", 32);
  const std::int64_t steps = flags.get_int("steps", 8);
  const std::int64_t warmup = flags.get_int("warmup", 2);
  const std::int64_t max_threads =
      flags.get_int("max_threads", std::max(4, ThreadPool::default_threads()));
  flags.validate_no_unknown();

  std::cout << "=== substrate thread sweep (" << model << ", batch " << batch
            << ", " << steps << " timed steps) ===\n"
            << "default threads (SPLITMED_THREADS or hardware_concurrency): "
            << ThreadPool::default_threads()
            << " (speedup saturates at the physical core count)\n\n";

  set_global_threads(1);
  const StepResult serial = run_steps(model, classes, batch, steps, warmup);

  Table table({"threads", "ms/step", "speedup", "bitwise == serial"});
  table.add_row({"1", format_fixed(serial.ms_per_step, 2), "1.00x", "yes"});

  bool all_identical = true;
  for (std::int64_t t = 2; t <= max_threads; t *= 2) {
    set_global_threads(static_cast<int>(t));
    const StepResult r = run_steps(model, classes, batch, steps, warmup);
    const bool same = bitwise_equal(serial, r);
    all_identical = all_identical && same;
    table.add_row({std::to_string(t), format_fixed(r.ms_per_step, 2),
                   format_fixed(serial.ms_per_step / r.ms_per_step, 2) + "x",
                   same ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << '\n'
            << (all_identical
                    ? "determinism contract holds: every thread count "
                      "reproduced the serial run bit-for-bit\n"
                    : "DETERMINISM VIOLATION: some thread count diverged "
                      "from the serial run\n");
  return all_identical ? 0 : 1;
}
